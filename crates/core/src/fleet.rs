//! The fleet executor: many [`Monitor`]s, many host cores, one
//! determinism contract.
//!
//! The paper's VMM time-multiplexes every VM onto a single VAX CPU
//! (§5: quantum round-robin with the WAIT handshake), and [`Monitor`]
//! faithfully does the same — one machine, one dispatch loop. Scaling
//! *out* therefore shards whole Monitors: each one remains a
//! paper-faithful single-CPU VAX, and a [`Fleet`] drives N of them to
//! completion across a bounded pool of host threads. Monitors share no
//! state (each owns its machine, memory, devices, and VMs), so the
//! parallelism is embarrassing — which is exactly what makes the
//! headline contract provable:
//!
//! **Determinism.** [`Fleet::run_parallel`] must produce, for every
//! monitor, results bit-identical to [`Fleet::run_serial`] — cycles,
//! [`CpuCounters`], per-VM [`VmStats`], halt reasons, console bytes.
//! [`MonitorOutcome`] is `PartialEq` precisely so tests state this as
//! `assert_eq!(parallel.outcomes, serial.outcomes)`, mirroring the
//! existing cache-on/off and obs-on/off equivalence contracts
//! (DESIGN.md §9, §10). Host thread scheduling may reorder *which*
//! monitor runs when, never what any monitor computes.
//!
//! Work distribution is an atomic-claim queue: each worker claims the
//! next unstarted monitor index and runs it to completion. Claim order
//! affects only wall-clock interleaving; outcomes are indexed by
//! monitor, so the report is always in fleet order.

use crate::fault::VmmError;
use crate::monitor::{Monitor, RunExit, VmConfig, VmId};
use crate::vm::{IoStrategy, VmState, VmStats};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};
use vax_arch::va::PAGE_BYTES;
use vax_cpu::{CpuCounters, ExecTier};
use vax_obs::Metrics;

/// What a pre-copy live migration did — the convergence record and the
/// downtime split [`Fleet::migrate_live`] reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LiveMigration {
    /// The VM's id on the target monitor.
    pub vm: VmId,
    /// Pre-copy rounds executed (source running).
    pub rounds: u32,
    /// The VM's memory size in pages — what stop-and-copy ships stopped.
    pub total_pages: u64,
    /// Dirty pages re-shipped across all pre-copy rounds (source
    /// running).
    pub precopy_pages: u64,
    /// Residual dirty pages shipped in the stop phase. The page-count
    /// proxy for downtime: pre-copy wins when this is far below
    /// `total_pages`.
    pub final_pages: u64,
    /// Wall-clock time the source was stopped (final ship + state
    /// transfer).
    pub downtime: Duration,
    /// Wall-clock time for the whole migration, pre-copy included.
    pub total: Duration,
}

/// Everything observable about one VM after a fleet run — the per-VM
/// half of the determinism contract.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VmOutcome {
    /// The VM's display name.
    pub name: String,
    /// Run state at the end of the run.
    pub state: VmState,
    /// Full event statistics.
    pub stats: VmStats,
    /// Why fault containment halted the VM, if it did.
    pub halt_reason: Option<VmmError>,
    /// Accumulated virtual console output (not drained from the VM).
    pub console: Vec<u8>,
}

/// Everything observable about one monitor after a fleet run. Two
/// outcomes compare equal iff the runs were bit-identical in every
/// architectural counter, accounting cell, and guest-visible byte.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MonitorOutcome {
    /// Why the monitor's run returned.
    pub exit: RunExit,
    /// The machine clock at the end of the run.
    pub cycles: u64,
    /// Architectural event counters.
    pub counters: CpuCounters,
    /// Cycles spent in VMM emulation paths.
    pub vmm_cycles: u64,
    /// VM-to-VM world switches performed.
    pub world_switches: u64,
    /// Per-VM outcomes, in creation order.
    pub vms: Vec<VmOutcome>,
}

/// The result of one fleet run: per-monitor outcomes in fleet order,
/// plus the host wall-clock the run took. `wall` is intentionally kept
/// out of any equality: it is the one thing parallelism *is* allowed to
/// change.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Worker threads the run used (1 for serial).
    pub jobs: usize,
    /// Host wall-clock time for the whole fleet.
    pub wall: Duration,
    /// One outcome per monitor, indexed exactly like the fleet.
    pub outcomes: Vec<MonitorOutcome>,
}

impl FleetReport {
    /// Total simulated instructions retired across the fleet.
    pub fn total_instructions(&self) -> u64 {
        self.outcomes.iter().map(|o| o.counters.instructions).sum()
    }

    /// Total simulated cycles across the fleet.
    pub fn total_cycles(&self) -> u64 {
        self.outcomes.iter().map(|o| o.cycles).sum()
    }

    /// Aggregate simulated instructions per host wall-clock second.
    pub fn instrs_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.total_instructions() as f64 / secs
        } else {
            0.0
        }
    }
}

/// One monitor plus the outcome of its (single) run, behind a mutex so
/// a worker can claim it. The monitor is never removed from the cell,
/// which keeps the collection path total without unwraps.
struct Cell {
    monitor: Monitor,
    outcome: Option<MonitorOutcome>,
}

/// Locks a cell, treating poison as recoverable: a poisoned cell only
/// means another worker panicked mid-run, and the collector re-runs any
/// cell left without an outcome.
fn lock_cell(cell: &Mutex<Cell>) -> MutexGuard<'_, Cell> {
    cell.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A set of independent [`Monitor`]s executed together — serially as
/// the reference semantics, or across a bounded thread pool with
/// bit-identical per-monitor results.
///
/// # Example
///
/// ```
/// use vax_vmm::{Fleet, Monitor, MonitorConfig, VmConfig};
///
/// let program = vax_asm::assemble_text("halt", 0x1000)?;
/// let mut fleet = Fleet::new();
/// for i in 0..4 {
///     let mut monitor = Monitor::new(MonitorConfig::default());
///     let vm = monitor.create_vm(&format!("guest{i}"), VmConfig::default());
///     monitor.vm_write_phys(vm, 0x1000, &program.bytes)?;
///     monitor.boot_vm(vm, 0x1000);
///     fleet.push(monitor);
/// }
/// let serial = fleet.run_serial(100_000);
/// let parallel = fleet.run_parallel(100_000, 2);
/// assert_eq!(serial.outcomes, parallel.outcomes);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Default)]
pub struct Fleet {
    members: Vec<Monitor>,
}

impl Fleet {
    /// An empty fleet.
    pub fn new() -> Fleet {
        Fleet::default()
    }

    /// Adds a fully configured monitor; returns its fleet index.
    pub fn push(&mut self, monitor: Monitor) -> usize {
        self.members.push(monitor);
        self.members.len() - 1
    }

    /// Number of monitors in the fleet.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when the fleet has no monitors.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// A member monitor (for inspection after a run).
    pub fn monitor(&self, index: usize) -> &Monitor {
        &self.members[index]
    }

    /// A member monitor, mutable (setup between runs).
    pub fn monitor_mut(&mut self, index: usize) -> &mut Monitor {
        &mut self.members[index]
    }

    /// Selects the execution tier on every member monitor, so
    /// `--exec-tier` applies fleet-wide before [`Fleet::run_parallel`].
    /// Per-monitor outcomes stay bit-identical across tiers (the same
    /// determinism contract parallelism is held to).
    pub fn set_exec_tier(&mut self, tier: ExecTier) {
        for m in &mut self.members {
            m.set_exec_tier(tier);
        }
    }

    /// Enables (`Some(interval)`) or disables (`None`) cycle-attributed
    /// profiling on every member. Profile families flow through
    /// [`Fleet::fleet_metrics`]'s counter/histogram merge, so a parallel
    /// run yields fleet-wide profiles with no extra plumbing.
    pub fn set_profiling(&mut self, sample_interval: Option<u64>) {
        for m in &mut self.members {
            match sample_interval {
                Some(interval) => m.enable_profiling(interval),
                None => m.disable_profiling(),
            }
        }
    }

    /// Snapshots one monitor's observable end state.
    fn outcome(monitor: &Monitor, exit: RunExit) -> MonitorOutcome {
        let vms = monitor
            .vm_ids()
            .map(|id| {
                let vm = monitor.vm(id);
                VmOutcome {
                    name: vm.name.clone(),
                    state: vm.state,
                    stats: vm.stats,
                    halt_reason: vm.halt_reason,
                    console: vm.console_out.clone(),
                }
            })
            .collect();
        MonitorOutcome {
            exit,
            cycles: monitor.machine().cycles(),
            counters: monitor.machine().counters(),
            vmm_cycles: monitor.vmm_cycles(),
            world_switches: monitor.world_switches(),
            vms,
        }
    }

    /// Runs every monitor to `budget` cycles (or all-halted) on the
    /// calling thread, in fleet order. This is the reference semantics
    /// the parallel mode is proven against.
    pub fn run_serial(&mut self, budget: u64) -> FleetReport {
        let start = Instant::now();
        let outcomes = self
            .members
            .iter_mut()
            .map(|m| {
                let exit = m.run(budget);
                Self::outcome(m, exit)
            })
            .collect();
        FleetReport {
            jobs: 1,
            wall: start.elapsed(),
            outcomes,
        }
    }

    /// Runs every monitor to `budget` cycles (or all-halted) across at
    /// most `jobs` worker threads, returning outcomes in fleet order.
    ///
    /// Per-monitor results are bit-identical to [`Fleet::run_serial`]:
    /// monitors share nothing, each is claimed by exactly one worker,
    /// and each runs exactly the code the serial mode runs. `jobs` is
    /// clamped to `1..=fleet size`.
    pub fn run_parallel(&mut self, budget: u64, jobs: usize) -> FleetReport {
        let n = self.members.len();
        let jobs = jobs.clamp(1, n.max(1));
        let start = Instant::now();
        let cells: Vec<Mutex<Cell>> = std::mem::take(&mut self.members)
            .into_iter()
            .map(|monitor| {
                Mutex::new(Cell {
                    monitor,
                    outcome: None,
                })
            })
            .collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..jobs {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    // Each index is claimed once, so this lock is
                    // uncontended; it exists to move the Monitor across
                    // the thread boundary safely.
                    let mut cell = lock_cell(&cells[i]);
                    let exit = cell.monitor.run(budget);
                    cell.outcome = Some(Self::outcome(&cell.monitor, exit));
                });
            }
        });
        let mut outcomes = Vec::with_capacity(n);
        for cell in cells {
            let mut cell = cell.into_inner().unwrap_or_else(PoisonError::into_inner);
            // A cell can lack an outcome only if its worker died before
            // finishing; run it here so the report stays total (the
            // monitor itself is deterministic, so this is equivalent).
            let outcome = match cell.outcome.take() {
                Some(o) => o,
                None => {
                    let exit = cell.monitor.run(budget);
                    Self::outcome(&cell.monitor, exit)
                }
            };
            outcomes.push(outcome);
            self.members.push(cell.monitor);
        }
        FleetReport {
            jobs,
            wall: start.elapsed(),
            outcomes,
        }
    }

    /// Moves a VM from one monitor to another — live migration as
    /// snapshot-plus-restore over the fleet's own memory (DESIGN.md §13).
    ///
    /// The VM's complete guest-visible state crosses: registers,
    /// privileged state, the guest-physical memory image, the virtual
    /// disk, console buffers, statistics, and any pending events
    /// (timestamps are rebased by the clock delta between the two
    /// machines, preserving relative latency). The target admits it
    /// through the normal creation path, so shadow tables start null and
    /// refill on demand — the migrated guest computes bit-identically,
    /// while the *monitor*-level accounting (world switches, fill
    /// counts) lawfully differs from an unmigrated run. The source slot
    /// is left halted at its virtual console; slot indices on both
    /// monitors remain stable.
    ///
    /// # Errors
    ///
    /// [`VmmError::Snapshot`] for bad indices, an `EmulatedMmio` VM
    /// (its device state lives on the source bus and cannot be
    /// extracted), or a target monitor without enough free real memory
    /// to admit the VM; [`VmmError::Internal`] if the source memory
    /// image is unreadable (a VMM bug, not a guest condition). On any
    /// error the source VM is untouched.
    pub fn migrate(&mut self, vm: VmId, from: usize, to: usize) -> Result<VmId, VmmError> {
        self.check_migration(vm, from, to)?;
        let memory = self.read_vm_memory(vm, from)?;
        self.admit_migrated(vm, from, to, memory)
    }

    /// Shared migration preflight: index validity and extractability.
    fn check_migration(&self, vm: VmId, from: usize, to: usize) -> Result<(), VmmError> {
        if from >= self.members.len() || to >= self.members.len() {
            return Err(VmmError::Snapshot {
                what: "migration monitor index out of range",
            });
        }
        if from == to {
            return Err(VmmError::Snapshot {
                what: "migration source and target are the same monitor",
            });
        }
        if vm.0 >= self.members[from].vm_count() {
            return Err(VmmError::Snapshot {
                what: "migration VM id out of range",
            });
        }
        if self.members[from].vm(vm).io_strategy == IoStrategy::EmulatedMmio {
            return Err(VmmError::Snapshot {
                what: "cannot migrate an EmulatedMmio VM",
            });
        }
        Ok(())
    }

    /// The VM's guest-physical window on the source's real machine:
    /// (machine byte address of gpa 0, machine page of gpa 0, size).
    fn vm_window(&self, vm: VmId, from: usize) -> Result<(u32, u32, u32), VmmError> {
        let v = self.members[from].vm(vm);
        let pa = v
            .gpa_to_pa_len(0, v.mem_bytes())
            .ok_or(VmmError::Internal {
                what: "migration source memory out of machine range",
            })?;
        Ok((pa, pa / PAGE_BYTES, v.mem_bytes()))
    }

    /// Copies out the VM's full guest-physical memory image.
    fn read_vm_memory(&self, vm: VmId, from: usize) -> Result<Vec<u8>, VmmError> {
        let (pa, _, len) = self.vm_window(vm, from)?;
        Ok(self.members[from]
            .machine()
            .mem()
            .read_slice(pa, len)
            .map_err(|_| VmmError::Internal {
                what: "migration source memory unreadable",
            })?
            .into_owned())
    }

    /// The stop phase shared by stop-and-copy and pre-copy migration:
    /// given the (already assembled) guest memory image, moves the VM's
    /// state to the target, replays the SLR shadow setup, and halts the
    /// source slot. `check_migration` must have passed.
    fn admit_migrated(
        &mut self,
        vm: VmId,
        from: usize,
        to: usize,
        memory: Vec<u8>,
    ) -> Result<VmId, VmmError> {
        let source_now = self.members[from].machine().cycles();
        let target_now = self.members[to].machine().cycles();
        let source_tracking = self.members[from].dirty_tracking_enabled();
        let (mut image, shadow) = {
            let src = &self.members[from];
            (src.vm(vm).clone(), src.shadow(vm).config())
        };
        // Event timestamps are in source machine cycles; rebase them so
        // the remaining latency carries over to the target clock.
        if let VmState::Idle { until } = image.state {
            image.state = VmState::Idle {
                until: target_now + until.saturating_sub(source_now),
            };
        }
        if let Some((at, irq, status_gpa)) = image.vdisk_pending {
            image.vdisk_pending =
                Some((target_now + at.saturating_sub(source_now), irq, status_gpa));
        }
        let config = VmConfig {
            mem_pages: image.mem_pages,
            shadow,
            io_strategy: image.io_strategy,
            dirty_strategy: image.dirty_strategy,
            vdisk_sectors: image.vdisk.len() as u32,
        };
        let dst = &mut self.members[to];
        // Admission control: create_vm's frame allocator asserts when
        // real memory runs out (fixed allocation, no paging), so a
        // target without room must be refused here — an error, not a
        // host panic. Mirrors the check snapshot restore applies.
        if Monitor::admission_frames(&config) > u64::from(dst.frames_remaining()) {
            return Err(VmmError::Snapshot {
                what: "VM does not fit in target monitor",
            });
        }
        let new_id = dst.create_vm(&image.name, config);
        dst.vm_write_phys(new_id, 0, &memory)?;
        image.mem_base_pfn = dst.vm(new_id).mem_base_pfn;
        *dst.vm_mut(new_id) = image;
        // The guest opened its S window with an MTPR to SLR on the
        // source; the fresh shadow set here never saw that MTPR, so
        // replay it. Without this, S-space touches after migration
        // raise access violations (the creation-time "no SLR yet"
        // protection) instead of fillable translation faults.
        let slot = &mut dst.vms[new_id.0];
        let slr = slot.vm.guest_slr;
        slot.shadow.reset_guest_s(&mut dst.machine, slr);
        // A tracked source means someone (an incremental-snapshot chain,
        // a profiler) depends on dirty-page telemetry following the
        // workload — carry the enablement to the target instead of
        // silently dropping it.
        if source_tracking && !self.members[to].dirty_tracking_enabled() {
            self.members[to].enable_dirty_tracking();
        }
        self.members[from].vm_mut(vm).state = VmState::ConsoleHalt;
        Ok(new_id)
    }

    /// Live-migrates a VM with iterative pre-copy (DESIGN.md §16).
    ///
    /// Stop-and-copy ([`Fleet::migrate`]) freezes the source for the
    /// whole memory copy. Pre-copy ships the full memory image while the
    /// source keeps executing, then converges in rounds: run the source
    /// for `round_budget` cycles, drain the write tracker, re-ship only
    /// the pages the guest dirtied. The source is stopped only for the
    /// *final* round, so downtime covers the residual dirty set plus the
    /// register-state transfer — O(last round's dirty pages), not
    /// O(memory).
    ///
    /// Termination policy: rounds end when the dirty set falls to at
    /// most `max(total_pages / 64, 1)` pages (the residual is cheaper to
    /// ship stopped than to chase), when a round stops shrinking the set
    /// (the guest dirties faster than a round ships — more pre-copy is
    /// pure overhead), or after `max_rounds` (a hard bound so a hostile
    /// writer cannot stall migration forever).
    ///
    /// Write tracking is enabled on the source for the duration if it
    /// was off, and restored afterwards; note that the rounds *drain*
    /// the source's dirty set, so an incremental-snapshot chain on the
    /// source must be re-based afterwards. The migrated guest computes
    /// bit-identically to a stop-and-copy migration at the same stop
    /// point; the source's extra `run` cycles are the lawful difference.
    ///
    /// # Errors
    ///
    /// The same conditions as [`Fleet::migrate`]. On error the source VM
    /// keeps running (tracking enablement is restored).
    pub fn migrate_live(
        &mut self,
        vm: VmId,
        from: usize,
        to: usize,
        round_budget: u64,
        max_rounds: u32,
    ) -> Result<LiveMigration, VmmError> {
        let start = Instant::now();
        self.check_migration(vm, from, to)?;
        let (_, first_pfn, mem_bytes) = self.vm_window(vm, from)?;
        let total_pages = u64::from(mem_bytes / PAGE_BYTES);
        let was_tracking = self.members[from].dirty_tracking_enabled();
        if !was_tracking {
            self.members[from].enable_dirty_tracking();
        }
        // Clear dirt older than the baseline copy: everything below is
        // captured by the full-memory read, so only writes after this
        // drain need re-shipping.
        let _ = self.members[from]
            .machine_mut()
            .mem_mut()
            .take_dirty_pages();
        let restore_tracking = |fleet: &mut Fleet| {
            if !was_tracking {
                fleet.members[from].disable_dirty_tracking();
            }
        };
        let mut staging = match self.read_vm_memory(vm, from) {
            Ok(m) => m,
            Err(e) => {
                restore_tracking(self);
                return Err(e);
            }
        };
        let threshold = (total_pages / 64).max(1);
        let mut rounds = 0u32;
        let mut precopy_pages = 0u64;
        let mut last_dirty = u64::MAX;
        while rounds < max_rounds {
            let exit = self.members[from].run(round_budget);
            rounds += 1;
            let shipped = self.ship_dirty(vm, from, first_pfn, total_pages, &mut staging);
            precopy_pages += shipped;
            if shipped <= threshold || shipped >= last_dirty || exit == RunExit::AllHalted {
                break;
            }
            last_dirty = shipped;
        }
        // Stop phase: the source no longer runs; everything from here to
        // the target resuming is downtime.
        let stop = Instant::now();
        let final_pages = self.ship_dirty(vm, from, first_pfn, total_pages, &mut staging);
        restore_tracking(self);
        let new_id = self.admit_migrated(vm, from, to, staging)?;
        Ok(LiveMigration {
            vm: new_id,
            rounds,
            total_pages,
            precopy_pages,
            final_pages,
            downtime: stop.elapsed(),
            total: start.elapsed(),
        })
    }

    /// Drains the source tracker and re-copies the dirtied pages inside
    /// the VM's window into the staging image. Returns pages shipped.
    fn ship_dirty(
        &mut self,
        _vm: VmId,
        from: usize,
        first_pfn: u32,
        total_pages: u64,
        staging: &mut [u8],
    ) -> u64 {
        let dirty = self.members[from]
            .machine_mut()
            .mem_mut()
            .take_dirty_pages();
        let mem = self.members[from].machine().mem();
        let mut shipped = 0u64;
        for pfn in dirty {
            // The tracker covers the whole real machine; only pages in
            // this VM's window travel.
            if pfn < first_pfn || u64::from(pfn - first_pfn) >= total_pages {
                continue;
            }
            if let Some(page) = mem.page(pfn) {
                let off = (pfn - first_pfn) as usize * PAGE_BYTES as usize;
                staging[off..off + PAGE_BYTES as usize].copy_from_slice(page);
                shipped += 1;
            }
        }
        shipped
    }

    /// Per-monitor metrics registries, in fleet order — the breakdown
    /// half of `--metrics-out` in fleet mode.
    pub fn per_monitor_metrics(&self) -> Vec<Metrics> {
        self.members.iter().map(Monitor::metrics).collect()
    }

    /// Fleet-wide metrics: every monitor's registry merged (counters
    /// summed, per-cause cost histograms folded), with rate gauges
    /// recomputed from the merged counters and a `fleet_monitors`
    /// counter recording the fleet size.
    pub fn fleet_metrics(&self) -> Metrics {
        let mut agg = Metrics::new();
        for m in &self.members {
            agg.merge(&m.metrics());
        }
        agg.counter("fleet_monitors", self.members.len() as u64);
        let hits = agg.get_counter("tlb_hits").unwrap_or(0);
        let misses = agg.get_counter("tlb_misses").unwrap_or(0);
        let rate = (hits + misses > 0).then(|| hits as f64 / (hits + misses) as f64);
        agg.gauge("tlb_hit_rate", rate);
        // Merge drops gauges by design; the fleet-wide dirty/touched
        // levels are the sums of the per-monitor levels (disjoint
        // memories), recomputed here from the sources.
        let tracked: Vec<&Monitor> = self
            .members
            .iter()
            .filter(|m| m.dirty_tracking_enabled())
            .collect();
        if !tracked.is_empty() {
            let dirty: u64 = tracked
                .iter()
                .map(|m| u64::from(m.machine().mem().dirty_page_count()))
                .sum();
            let touched: u64 = tracked
                .iter()
                .map(|m| u64::from(m.machine().mem().touched_page_count()))
                .sum();
            agg.gauge("dirty_pages", Some(dirty as f64));
            agg.gauge("touched_pages", Some(touched as f64));
        }
        agg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::{MonitorConfig, VmConfig};

    /// Compile-time Send audit: a Monitor (and everything inside it)
    /// must be movable to a worker thread. A regression — an Rc, a
    /// non-Send trait object on the bus — fails this at build time.
    fn _assert_send<T: Send>() {}
    #[allow(dead_code)]
    fn _fleet_types_are_send() {
        _assert_send::<Monitor>();
        _assert_send::<Fleet>();
        _assert_send::<MonitorOutcome>();
        _assert_send::<FleetReport>();
    }

    fn counting_monitor(iters: u32) -> Monitor {
        let src = format!(
            "
                movl #{iters}, r2
            top:
                addl2 #3, r3
                sobgtr r2, top
                halt
            "
        );
        let program = vax_asm::assemble_text(&src, 0x1000).unwrap();
        let mut monitor = Monitor::new(MonitorConfig::default());
        let vm = monitor.create_vm("count", VmConfig::default());
        monitor.vm_write_phys(vm, 0x1000, &program.bytes).unwrap();
        monitor.boot_vm(vm, 0x1000);
        monitor
    }

    fn fleet_of(sizes: &[u32]) -> Fleet {
        let mut fleet = Fleet::new();
        for &iters in sizes {
            fleet.push(counting_monitor(iters));
        }
        fleet
    }

    const SIZES: [u32; 5] = [100, 2_000, 50, 700, 1_300];

    #[test]
    fn parallel_matches_serial_bit_for_bit() {
        let serial = fleet_of(&SIZES).run_serial(10_000_000);
        for jobs in [1, 2, 5, 64] {
            let mut fleet = fleet_of(&SIZES);
            let parallel = fleet.run_parallel(10_000_000, jobs);
            assert_eq!(parallel.outcomes, serial.outcomes, "jobs = {jobs}");
            assert_eq!(fleet.len(), SIZES.len(), "monitors returned to the fleet");
        }
        // Different workloads genuinely produced different outcomes, so
        // the equality above is not vacuous.
        assert_ne!(serial.outcomes[0], serial.outcomes[1]);
    }

    #[test]
    fn exec_tiers_are_invisible_to_fleet_outcomes() {
        // The same fleet must produce bit-identical outcomes under every
        // execution tier, serial and parallel alike — the three-way
        // equivalence contract extended to fleet scale.
        let reference = fleet_of(&SIZES).run_serial(10_000_000);
        for tier in [ExecTier::Interp, ExecTier::Cache, ExecTier::Trans] {
            let mut fleet = fleet_of(&SIZES);
            fleet.set_exec_tier(tier);
            assert!(fleet.members.iter().all(|m| m.exec_tier() == tier));
            let mut serial_fleet = fleet_of(&SIZES);
            serial_fleet.set_exec_tier(tier);
            let serial = serial_fleet.run_serial(10_000_000);
            let parallel = fleet.run_parallel(10_000_000, 3);
            assert_eq!(serial.outcomes, reference.outcomes, "{tier:?} serial");
            assert_eq!(parallel.outcomes, reference.outcomes, "{tier:?} parallel");
        }
    }

    #[test]
    fn outcomes_keep_fleet_order_and_monitors_stay_inspectable() {
        let mut fleet = fleet_of(&SIZES);
        let report = fleet.run_parallel(10_000_000, 3);
        for (i, outcome) in report.outcomes.iter().enumerate() {
            assert_eq!(outcome.exit, RunExit::AllHalted);
            assert_eq!(
                outcome.cycles,
                fleet.monitor(i).machine().cycles(),
                "outcome {i} is the monitor at index {i}"
            );
        }
        // More iterations, more instructions: order was preserved.
        let instrs: Vec<u64> = report
            .outcomes
            .iter()
            .map(|o| o.counters.instructions)
            .collect();
        assert!(instrs[1] > instrs[0] && instrs[1] > instrs[3]);
        assert_eq!(report.total_instructions(), instrs.iter().sum::<u64>());
    }

    #[test]
    fn fleet_metrics_sum_per_monitor_registries() {
        let mut fleet = fleet_of(&SIZES);
        fleet.run_serial(10_000_000);
        let per = fleet.per_monitor_metrics();
        let agg = fleet.fleet_metrics();
        for name in ["instructions", "cycles", "vm_emulation_traps"] {
            let sum: u64 = per.iter().filter_map(|m| m.get_counter(name)).sum();
            assert_eq!(agg.get_counter(name), Some(sum), "{name}");
        }
        assert_eq!(agg.get_counter("fleet_monitors"), Some(SIZES.len() as u64));
    }

    #[test]
    fn migrate_preserves_guest_computation() {
        // Uninterrupted reference run.
        let mut reference = counting_monitor(200_000);
        reference.run(1_000_000_000);
        let rid = reference.vm_ids().next().expect("one VM");
        assert_eq!(reference.vm(rid).state, VmState::ConsoleHalt);
        let expected_r3 = reference.vm(rid).regs[3];
        assert_eq!(expected_r3, 3 * 200_000);

        // Same workload, but moved to a different monitor mid-loop.
        let mut fleet = Fleet::new();
        fleet.push(counting_monitor(200_000));
        fleet.push(Monitor::new(MonitorConfig::default()));
        fleet.monitor_mut(0).run(50_000);
        let vm = fleet.monitor(0).vm_ids().next().expect("one VM");
        assert_eq!(fleet.monitor(0).vm(vm).state, VmState::Ready, "mid-run");
        let moved = fleet.migrate(vm, 0, 1).expect("migrates");
        assert_eq!(fleet.monitor(0).vm(vm).state, VmState::ConsoleHalt);
        fleet.monitor_mut(1).run(1_000_000_000);
        let m = fleet.monitor(1).vm(moved);
        assert_eq!(m.state, VmState::ConsoleHalt);
        assert_eq!(m.regs[3], expected_r3);
        assert!(m.halt_reason.is_none());
    }

    #[test]
    fn migrate_rejects_bad_requests() {
        let mut fleet = fleet_of(&[10, 10]);
        let vm = fleet.monitor(0).vm_ids().next().expect("one VM");
        for (from, to) in [(0, 5), (5, 0), (0, 0)] {
            assert!(
                matches!(fleet.migrate(vm, from, to), Err(VmmError::Snapshot { .. })),
                "{from} -> {to}"
            );
        }
        let mut mmio = Monitor::new(MonitorConfig::default());
        let mvm = mmio.create_vm(
            "mmio",
            VmConfig {
                io_strategy: IoStrategy::EmulatedMmio,
                ..VmConfig::default()
            },
        );
        let idx = fleet.push(mmio);
        assert!(matches!(
            fleet.migrate(mvm, idx, 0),
            Err(VmmError::Snapshot { .. })
        ));
    }

    #[test]
    fn migrate_into_a_full_monitor_is_an_error_not_a_panic() {
        // The target's 64 KiB of real memory cannot admit a default
        // 256 KiB VM; migrate must refuse before the frame allocator
        // asserts, leaving both monitors untouched.
        let mut fleet = Fleet::new();
        fleet.push(counting_monitor(10));
        fleet.push(Monitor::new(MonitorConfig {
            mem_bytes: 64 * 1024,
            ..MonitorConfig::default()
        }));
        let vm = fleet.monitor(0).vm_ids().next().expect("one VM");
        assert!(matches!(
            fleet.migrate(vm, 0, 1),
            Err(VmmError::Snapshot {
                what: "VM does not fit in target monitor"
            })
        ));
        assert_eq!(fleet.monitor(0).vm(vm).state, VmState::Ready);
        assert_eq!(fleet.monitor(1).vm_count(), 0);

        // A roomy target still admits it — the check is not over-strict.
        fleet.push(Monitor::new(MonitorConfig::default()));
        fleet.migrate(vm, 0, 2).expect("fits");
    }

    #[test]
    fn migrate_live_preserves_guest_computation() {
        // Uninterrupted reference run.
        let mut reference = counting_monitor(200_000);
        reference.run(1_000_000_000);
        let rid = reference.vm_ids().next().expect("one VM");
        let expected_r3 = reference.vm(rid).regs[3];
        assert_eq!(expected_r3, 3 * 200_000);

        // Same workload, pre-copy migrated mid-loop. The source keeps
        // executing during the rounds; the target finishes the rest.
        let mut fleet = Fleet::new();
        fleet.push(counting_monitor(200_000));
        fleet.push(Monitor::new(MonitorConfig::default()));
        fleet.monitor_mut(0).run(50_000);
        let vm = fleet.monitor(0).vm_ids().next().expect("one VM");
        let report = fleet.migrate_live(vm, 0, 1, 25_000, 8).expect("migrates");
        assert_eq!(fleet.monitor(0).vm(vm).state, VmState::ConsoleHalt);
        assert!(report.rounds >= 1 && report.rounds <= 8);
        // The compute loop dirties almost nothing, so the stop phase
        // ships a small residue — the whole point of pre-copy.
        assert!(
            report.final_pages < report.total_pages,
            "stop phase shipped {} of {} pages",
            report.final_pages,
            report.total_pages
        );
        // Tracking was borrowed for the migration, not leaked.
        assert!(!fleet.monitor(0).dirty_tracking_enabled());
        fleet.monitor_mut(1).run(1_000_000_000);
        let m = fleet.monitor(1).vm(report.vm);
        assert_eq!(m.state, VmState::ConsoleHalt);
        assert_eq!(m.regs[3], expected_r3);
        assert!(m.halt_reason.is_none());
    }

    #[test]
    fn migrate_carries_write_tracking_to_the_target() {
        // A tracked source means a snapshot chain or profiler depends on
        // dirty telemetry following the workload: both migration paths
        // must arm the target rather than silently going dark.
        for live in [false, true] {
            let mut fleet = Fleet::new();
            fleet.push(counting_monitor(1_000));
            fleet.push(Monitor::new(MonitorConfig::default()));
            fleet.monitor_mut(0).enable_dirty_tracking();
            let vm = fleet.monitor(0).vm_ids().next().expect("one VM");
            if live {
                fleet.migrate_live(vm, 0, 1, 10_000, 4).expect("migrates");
            } else {
                fleet.migrate(vm, 0, 1).expect("migrates");
            }
            assert!(
                fleet.monitor(1).dirty_tracking_enabled(),
                "live={live}: target must be tracking"
            );
            assert!(
                fleet.monitor(0).dirty_tracking_enabled(),
                "live={live}: source enablement untouched"
            );
        }
        // An untracked source migrates without arming anything.
        let mut fleet = Fleet::new();
        fleet.push(counting_monitor(1_000));
        fleet.push(Monitor::new(MonitorConfig::default()));
        let vm = fleet.monitor(0).vm_ids().next().expect("one VM");
        fleet.migrate(vm, 0, 1).expect("migrates");
        assert!(!fleet.monitor(1).dirty_tracking_enabled());
    }

    #[test]
    fn empty_fleet_runs() {
        let mut fleet = Fleet::new();
        assert!(fleet.is_empty());
        let serial = fleet.run_serial(1_000);
        let parallel = fleet.run_parallel(1_000, 4);
        assert!(serial.outcomes.is_empty() && parallel.outcomes.is_empty());
        assert_eq!(fleet.fleet_metrics().get_counter("fleet_monitors"), Some(0));
    }
}
