//! User-mode workload programs.
//!
//! One shared program image serves every process: it dispatches on the
//! workload id in R10 (placed in the PCB by the loader) with the
//! iteration count in R6. All programs finish with the exit syscall.

use crate::kernel::Flavor;

/// Emits the user program source (assembled at P0 virtual address 0).
pub fn user_source(flavor: Flavor) -> String {
    // The four-mode CHM chain exists only on MiniVMS (ULTRIX-32 uses two
    // modes, paper §4 footnote 6).
    let chain = match flavor {
        Flavor::MiniVms => "chms #0",
        Flavor::MiniUltrix => "chmk #9",
    };
    format!(
        "
        entry:                       ; r10 = workload id, r6 = iterations
            cmpl r10, #1
            bneq d1
            brw w_editing
        d1: cmpl r10, #2
            bneq d2
            brw w_transaction
        d2: cmpl r10, #3
            bneq d3
            brw w_syscall
        d3: cmpl r10, #4
            bneq d4
            brw w_ipl
        d4: cmpl r10, #5
            bneq d5
            brw w_touch
        d5: cmpl r10, #6
            bneq d6
            brw w_probe
        d6: cmpl r10, #7
            bneq d7
            brw w_queue
        d7: ; fall through: compute

        ; -- pure integer arithmetic ------------------------------------
        w_compute:
            clrl r2
            movl r6, r3
        wc_l:
            addl2 r3, r2
            xorl2 #0x5A5A, r2
            ashl #1, r2, r2
            mull2 r3, r2
            sobgtr r3, wc_l
            chmk #2

        ; -- interactive editing mix ------------------------------------
        ; MOVC3 clobbers R0-R5, so the loop counter lives in R9.
        w_editing:
            movl r6, r9
        we_l:
            movc3 #64, @#0x2100, @#0x2180
            movc3 #64, @#0x2180, @#0x2100
            bicl3 #0xFFFFFFF0, r9, r2
            bneq we_nosys
            movl #46, r0
            chmk #1                  ; '.'
            {chain}                  ; mode-chain service call
            chmk #3                  ; read uptime
        we_nosys:
            bicl3 #0xFFFFFFF0, r9, r2
            ashl #9, r2, r2
            addl2 #0x4000, r2        ; touch the demand-paged region
            movb r9, (r2)
            bicl3 #0xFFFFFFE0, r9, r2
            ashl #9, r2, r2
            addl2 #0x2000, r2        ; sweep the 32-page data region too
            movb r9, (r2)
            sobgtr r9, we_l
            chmk #2

        ; -- transaction processing -------------------------------------
        ; Records rotate across eight pages (realistic working set).
        w_transaction:
            movl r6, r3
        wt_l:
            bicl3 #0xFFFFFFF8, r3, r2
            ashl #9, r2, r2
            addl2 #0x2400, r2        ; record base: 0x2400 + (r3&7)*512
            incl (r2)                ; update record fields
            addl2 r3, 4(r2)
            movl (r2), r4
            movl r4, 8(r2)
            bicl3 #0xFFFFFFF8, r3, r2
            bneq wt_nosync
            bicl3 #0xFFFFFFFC, r3, r0
            incl r0                  ; sector 1..4
            movl #0x2400, r1
            chmk #6                  ; commit to disk
        wt_nosync:
            ; touch the demand region too
            bicl3 #0xFFFFFFF8, r3, r2
            ashl #9, r2, r2
            addl2 #0x4000, r2
            movb r3, (r2)
            sobgtr r3, wt_l
            chmk #2

        ; -- syscall-bound ----------------------------------------------
        w_syscall:
            movl r6, r3
        ws_l:
            chmk #0                  ; yield
            sobgtr r3, ws_l
            chmk #2

        ; -- MTPR-to-IPL heavy ------------------------------------------
        w_ipl:
            movl r6, r3
        wi_l:
            movl #8, r0
            chmk #4                  ; 8 IPL toggles in the kernel
            sobgtr r3, wi_l
            chmk #2

        ; -- page-touch sweep -------------------------------------------
        w_touch:
            movl r6, r3
        wto_l:
            movl #0x2000, r2
        wto_i:
            movb r3, (r2)
            addl2 #512, r2
            cmpl r2, #0x5E00
            blss wto_i
            sobgtr r3, wto_l
            chmk #2

        ; -- PROBE heavy ------------------------------------------------
        w_probe:
            movl r6, r3
        wp_l:
            movl #16, r0
            movl #0x2200, r1
            chmk #5
            sobgtr r3, wp_l
            chmk #2

        ; -- queue-instruction heavy (VMS-style work queues) -------------
        w_queue:
            movl #0x2600, @#0x2600   ; self-linked header = empty queue
            movl #0x2600, @#0x2604
            movl r6, r3
        wq_l:
            insque @#0x2700, @#0x2600
            bneq wq_bad              ; Z must be set: first entry
            insque @#0x2800, @#0x2700
            remque @#0x2800, r2
            remque @#0x2700, r2
            beql wq_ok               ; Z: queue empty again
        wq_bad:
            movl #63, r0             ; '?' marks a queue invariant failure
            chmk #1
        wq_ok:
            sobgtr r3, wq_l
            chmk #2
        "
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn user_program_assembles() {
        for flavor in [Flavor::MiniVms, Flavor::MiniUltrix] {
            let (p, syms) = vax_asm::assemble_text_with_symbols(&user_source(flavor), 0)
                .expect("user program assembles");
            assert!(p.bytes.len() < 16 * 512, "fits the code pages");
            assert_eq!(syms["entry"], 0, "entry at P0 va 0");
        }
    }

    #[test]
    fn vms_flavor_uses_the_mode_chain() {
        let vms = user_source(Flavor::MiniVms);
        assert!(vms.contains("chms #0"));
        let ultrix = user_source(Flavor::MiniUltrix);
        assert!(!ultrix.contains("chms"));
    }
}
