#![warn(missing_docs)]

//! Guest operating systems for the simulated VAX: **MiniVMS** (four
//! access modes) and **MiniUltrix** (two modes), plus the workload
//! programs and run drivers used throughout the evaluation.
//!
//! The same bootable image runs unchanged on the bare modified VAX and
//! inside a virtual machine under `vax-vmm` — the paper's equivalence
//! property — with exactly the accommodations the paper lists for the
//! virtual VAX (SID-based detection, `KCALL` start-I/O, the VMM-
//! maintained uptime cell).
//!
//! # Example
//!
//! ```
//! use vax_os::{build_image, run_bare, OsConfig, Workload};
//!
//! let image = build_image(&OsConfig {
//!     nproc: 2,
//!     workload: Workload::Compute,
//!     iterations: 10,
//!     ..OsConfig::default()
//! })?;
//! let out = run_bare(&image, 20_000_000);
//! assert!(out.completed);
//! assert_eq!(out.kernel.done, 2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod image;
pub mod kernel;
pub mod layout;
pub mod runner;
pub mod workload;

pub use image::{build_image, BuildError, GuestImage};
pub use kernel::{Flavor, OsConfig, Workload};
pub use runner::{boot_in_monitor, run_bare, run_in_vm, KernelCounters, RunOutcome};
pub use workload::user_source;
