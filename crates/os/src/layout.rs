//! Guest physical-memory layout shared by the kernel builder and loader.
//!
//! All addresses are guest-physical; with the guest's identity system
//! page table enabled, S-space virtual address `0x8000_0000 + gpa` maps
//! the same byte.

/// Guest SCB page.
pub const SCB_GPA: u32 = 0x0200;
/// Boot-time P0 page table (identity map of the kernel pages, used only
/// while turning translation on).
pub const BOOT_P0T_GPA: u32 = 0x0600;
/// Kernel variables page (see the `V_*` offsets).
pub const KDATA_GPA: u32 = 0x0800;
/// Guest system page table.
pub const SPT_GPA: u32 = 0x1000;
/// Kernel code.
pub const KERNEL_GPA: u32 = 0x2000;
/// Interrupt stack top.
pub const ISTACK_TOP: u32 = 0x7000;
/// Boot-time kernel stack top.
pub const BOOT_KSTACK_TOP: u32 = 0x7800;
/// Process control blocks, 128 bytes apiece.
pub const PCB_BASE: u32 = 0x8000;
/// Per-process P0 page tables, 512 bytes (128 entries) apiece.
pub const P0T_BASE: u32 = 0x9000;
/// Per-process stack block (0x400 bytes): kernel stack page then a page
/// shared by the executive and supervisor stacks.
pub const KSTACKS_BASE: u32 = 0xC000;
/// Shared user program code.
pub const USER_CODE_GPA: u32 = 0x1_0000;
/// Per-process user data (32 pages = 0x4000 bytes each).
pub const USER_DATA_BASE: u32 = 0x1_2000;
/// Bytes of user data per process.
pub const USER_DATA_STRIDE: u32 = 0x4000;

/// Maximum process count the layout supports.
pub const MAX_PROCS: u32 = 16;

/// S-space VPN mapped to the real machine's I/O space (bare-metal disk).
pub const REAL_IO_SVPN: u32 = 0x300;
/// S-space VPN mapped to the virtual machine's emulated I/O window.
pub const VM_IO_SVPN: u32 = 0x301;
/// Guest SLR: S pages 0..=VM_IO_SVPN.
pub const GUEST_SLR: u32 = VM_IO_SVPN + 1;

/// Bare-metal disk CSR base as an S virtual address.
pub const REAL_IO_SVA: u32 = 0x8000_0000 + (REAL_IO_SVPN << 9);
/// Emulated-MMIO disk CSR base as an S virtual address.
pub const VM_IO_SVA: u32 = 0x8000_0000 + (VM_IO_SVPN << 9);

/// User-space virtual layout: code occupies P0 pages 0..16.
pub const USER_CODE_VA: u32 = 0;
/// Data occupies P0 pages 16..48 (va 0x2000..0x6000).
pub const USER_DATA_VA: u32 = 0x2000;
/// Pages 16..32 boot valid; 32..47 are demand-validated by the kernel.
pub const USER_DEMAND_VA: u32 = 0x4000;
/// Initial user stack pointer (grows down inside the last data page,
/// P0 page 47).
pub const USER_SP: u32 = 0x6000;
/// P0LR for every process.
pub const USER_P0LR: u32 = 48;

/// Kernel variable offsets within the KDATA page.
pub mod kvar {
    /// Timer ticks since boot.
    pub const TICKS: u32 = 0x00;
    /// Currently running process index.
    pub const CURPROC: u32 = 0x04;
    /// Number of processes.
    pub const NPROC: u32 = 0x08;
    /// Processes that have exited.
    pub const DONE: u32 = 0x0C;
    /// 1 when running on a virtual VAX (detected via SID).
    pub const IS_VM: u32 = 0x10;
    /// Uptime cell the VMM refreshes (paper §5, "Time").
    pub const UPTIME: u32 = 0x14;
    /// Next process chosen by the scheduler.
    pub const NEXT: u32 = 0x18;
    /// Quantum countdown in ticks.
    pub const QUANT: u32 = 0x1C;
    /// Guest page faults serviced (demand validation).
    pub const PF_COUNT: u32 = 0x20;
    /// Modify faults serviced (bare modified VAX only).
    pub const MF_COUNT: u32 = 0x24;
    /// Syscalls serviced.
    pub const SYS_COUNT: u32 = 0x28;
    /// Disk operations completed.
    pub const IO_COUNT: u32 = 0x2C;
    /// 1 to force the memory-mapped I/O driver even on a virtual VAX
    /// (the §4.4.3 ablation).
    pub const FORCE_MMIO: u32 = 0x30;
    /// Disk-driver direction flag (1 = write).
    pub const IOFLAG: u32 = 0x34;
    /// KCALL request block (5 longwords).
    pub const IOBLK: u32 = 0x40;
    /// Per-process state longwords (0 ready, 1 done), 16 entries.
    pub const STATE: u32 = 0x80;
}

/// Address helpers (guest-physical).
pub fn pcb_gpa(proc: u32) -> u32 {
    PCB_BASE + proc * 128
}

/// Guest-physical address of a process's P0 page table.
pub fn p0t_gpa(proc: u32) -> u32 {
    P0T_BASE + proc * 512
}

/// Kernel stack top for a process.
pub fn kstack_top(proc: u32) -> u32 {
    KSTACKS_BASE + proc * 0x400 + 0x200
}

/// Executive stack top for a process.
pub fn estack_top(proc: u32) -> u32 {
    KSTACKS_BASE + proc * 0x400 + 0x400
}

/// Supervisor stack top for a process.
pub fn sstack_top(proc: u32) -> u32 {
    KSTACKS_BASE + proc * 0x400 + 0x300
}

/// First guest-physical byte of a process's user data.
pub fn user_data_gpa(proc: u32) -> u32 {
    USER_DATA_BASE + proc * USER_DATA_STRIDE
}

/// Guest memory pages needed for `nproc` processes.
pub fn required_pages(nproc: u32) -> u32 {
    user_data_gpa(nproc).div_ceil(512)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_do_not_overlap() {
        const { assert!(SCB_GPA + 0x140 <= BOOT_P0T_GPA) };
        const { assert!(BOOT_P0T_GPA + 0x100 <= KDATA_GPA) };
        const { assert!(KDATA_GPA + 0x200 <= SPT_GPA) };
        const { assert!(SPT_GPA + GUEST_SLR * 4 <= KERNEL_GPA) };
        const { assert!(KERNEL_GPA + 0x4000 <= ISTACK_TOP) }; // 16 KiB code
        const { assert!(BOOT_KSTACK_TOP <= PCB_BASE) };
        assert!(pcb_gpa(MAX_PROCS) <= P0T_BASE);
        assert!(p0t_gpa(MAX_PROCS) <= KSTACKS_BASE);
        assert!(kstack_top(MAX_PROCS - 1) + 0x200 <= USER_CODE_GPA);
        const { assert!(USER_CODE_GPA + 0x2000 <= USER_DATA_BASE) };
    }

    #[test]
    fn required_pages_scales() {
        assert!(required_pages(1) >= 0x14000 / 512);
        assert_eq!(required_pages(4) * 512, user_data_gpa(4));
    }

    #[test]
    fn io_vpns_beyond_memory() {
        // 16 procs * 16 KiB of data ends well below the I/O S pages.
        assert!(required_pages(MAX_PROCS) < REAL_IO_SVPN);
    }
}
