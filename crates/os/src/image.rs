//! Builds a bootable guest image: kernel, user program, SCB, page
//! tables, and PCBs — everything a real boot loader would place in
//! memory before starting the processor.

use crate::kernel::{kernel_source, Flavor, OsConfig};
use crate::layout::{self as l, kvar};
use crate::workload::user_source;
use std::collections::HashMap;
use vax_arch::{Protection, Psl, Pte, ScbVector};

/// A bootable guest image: `(guest physical address, bytes)` segments
/// plus the entry point.
#[derive(Debug, Clone)]
pub struct GuestImage {
    /// Load segments.
    pub segments: Vec<(u32, Vec<u8>)>,
    /// Boot entry (guest-physical, MAPEN off).
    pub entry: u32,
    /// Guest memory pages the image requires.
    pub mem_pages: u32,
    /// Kernel symbol table (S virtual addresses).
    pub symbols: HashMap<String, u32>,
    /// The configuration the image was built from.
    pub config: OsConfig,
}

/// Errors building an image.
#[derive(Debug)]
pub enum BuildError {
    /// The kernel or user program failed to assemble.
    Asm(vax_asm::AsmError),
    /// Configuration out of the layout's range.
    Config(String),
}

impl From<vax_asm::AsmError> for BuildError {
    fn from(e: vax_asm::AsmError) -> BuildError {
        BuildError::Asm(e)
    }
}

impl core::fmt::Display for BuildError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            BuildError::Asm(e) => write!(f, "assembly failed: {e}"),
            BuildError::Config(m) => write!(f, "bad configuration: {m}"),
        }
    }
}

impl std::error::Error for BuildError {}

fn le(v: u32) -> [u8; 4] {
    v.to_le_bytes()
}

/// Builds a bootable image for the configuration.
///
/// # Errors
///
/// [`BuildError`] if the configuration exceeds the layout or the
/// generated assembly fails to assemble (a bug).
pub fn build_image(config: &OsConfig) -> Result<GuestImage, BuildError> {
    if config.nproc == 0 || config.nproc > l::MAX_PROCS {
        return Err(BuildError::Config(format!(
            "nproc {} not in 1..={}",
            config.nproc,
            l::MAX_PROCS
        )));
    }
    let kernel_base = 0x8000_0000 + l::KERNEL_GPA;
    let (kernel, symbols) =
        vax_asm::assemble_text_with_symbols(&kernel_source(config), kernel_base)?;
    if kernel.bytes.len() > 0x4000 {
        return Err(BuildError::Config("kernel too large".into()));
    }
    let (user, _) =
        vax_asm::assemble_text_with_symbols(&user_source(config.flavor), l::USER_CODE_VA)?;
    if user.bytes.len() > 16 * 512 {
        return Err(BuildError::Config("user program too large".into()));
    }

    let mut segments: Vec<(u32, Vec<u8>)> = Vec::new();

    // ---- SCB ----
    let kill = symbols["kill"];
    let mut scb = vec![0u8; 0x140];
    let mut set = |off: u32, addr: u32| {
        scb[off as usize..off as usize + 4].copy_from_slice(&le(addr));
    };
    for off in (0..0x140).step_by(4) {
        set(off as u32, kill);
    }
    set(
        ScbVector::TranslationNotValid.offset(),
        symbols["pagefault"],
    );
    set(ScbVector::ModifyFault.offset(), symbols["modifyfault"]);
    set(ScbVector::Chmk.offset(), symbols["syscall"]);
    set(ScbVector::IntervalTimer.offset(), symbols["timer"]);
    set(ScbVector::Device0.offset(), symbols["dismiss"]);
    set(ScbVector::Device1.offset(), symbols["dismiss"]);
    if config.flavor == Flavor::MiniVms {
        set(ScbVector::Chme.offset(), symbols["exec_svc"]);
        set(ScbVector::Chms.offset(), symbols["super_svc"]);
    }
    segments.push((l::SCB_GPA, scb));

    // ---- guest system page table (identity, region-appropriate
    //      protection) ----
    let mem_pages = l::required_pages(config.nproc);
    let kernel_code_first = l::KERNEL_GPA >> 9;
    let kernel_code_last = (l::KERNEL_GPA + 0x4000) >> 9;
    let mut spt = Vec::with_capacity((l::GUEST_SLR * 4) as usize);
    for vpn in 0..l::GUEST_SLR {
        let pte = if vpn < mem_pages {
            let prot = if (kernel_code_first..kernel_code_last).contains(&vpn) {
                // Kernel code pages host the CHME/CHMS services too:
                // outer modes must be able to fetch them.
                Protection::Srkw
            } else if (l::KSTACKS_BASE >> 9..l::USER_CODE_GPA >> 9).contains(&vpn) && vpn % 2 == 1 {
                // The second page of each per-process stack block holds
                // the executive and supervisor stacks.
                Protection::Sw
            } else {
                Protection::Kw
            };
            Pte::build(vpn, prot, true, true)
        } else if vpn == l::REAL_IO_SVPN {
            Pte::build(vax_cpu::IO_BASE_PA >> 9, Protection::Kw, true, true)
        } else if vpn == l::VM_IO_SVPN {
            Pte::build(0x000F_0000, Protection::Kw, true, true)
        } else {
            Pte::build(0, Protection::Na, false, false)
        };
        spt.extend_from_slice(&le(pte.raw()));
    }
    segments.push((l::SPT_GPA, spt));

    // ---- boot P0 identity table (kernel region, used during MAPEN) ----
    let mut bp0 = Vec::with_capacity(64 * 4);
    for vpn in 0..64 {
        bp0.extend_from_slice(&le(Pte::build(vpn, Protection::Kw, true, true).raw()));
    }
    segments.push((l::BOOT_P0T_GPA, bp0));

    // ---- kernel variables ----
    let mut kdata = vec![0u8; 0x200];
    kdata[kvar::NPROC as usize..kvar::NPROC as usize + 4].copy_from_slice(&le(config.nproc));
    kdata[kvar::QUANT as usize..kvar::QUANT as usize + 4]
        .copy_from_slice(&le(config.quantum_ticks));
    if config.force_mmio {
        kdata[kvar::FORCE_MMIO as usize..kvar::FORCE_MMIO as usize + 4].copy_from_slice(&le(1));
    }
    segments.push((l::KDATA_GPA, kdata));

    // ---- code ----
    segments.push((l::KERNEL_GPA, kernel.bytes.clone()));
    segments.push((l::USER_CODE_GPA, user.bytes.clone()));

    // ---- per-process PCBs and P0 page tables ----
    let user_code_pages = (user.bytes.len() as u32).div_ceil(512);
    let mut user_psl = Psl::new();
    user_psl.set_cur_mode(vax_arch::AccessMode::User);
    user_psl.set_prv_mode(vax_arch::AccessMode::User);
    for proc in 0..config.nproc {
        let mut pcb = vec![0u8; 128];
        let mut put = |off: u32, v: u32| {
            pcb[off as usize..off as usize + 4].copy_from_slice(&le(v));
        };
        // Mode stacks are S-space addresses: they must survive P0-table
        // switches.
        put(0, 0x8000_0000 + l::kstack_top(proc));
        put(4, 0x8000_0000 + l::estack_top(proc));
        put(8, 0x8000_0000 + l::sstack_top(proc));
        put(12, l::USER_SP);
        put(16 + 4 * 6, config.iterations); // R6
        put(16 + 4 * 10, config.workload.id(proc)); // R10
        put(72, l::USER_CODE_VA); // PC
        put(76, user_psl.raw()); // PSL
        put(80, 0x8000_0000 + l::p0t_gpa(proc)); // P0BR
        put(84, l::USER_P0LR); // P0LR
        put(88, 0); // P1BR (unused: P1 is empty)
        put(92, 1 << 21); // P1LR: empty P1
        segments.push((l::pcb_gpa(proc), pcb));

        let data_first_gpfn = l::user_data_gpa(proc) >> 9;
        let mut p0t = Vec::with_capacity(128 * 4);
        for vpn in 0..128u32 {
            let pte = if vpn < user_code_pages {
                Pte::build((l::USER_CODE_GPA >> 9) + vpn, Protection::Ur, true, true)
            } else if (16..32).contains(&vpn) {
                // Boot-valid data pages, modify bit clear: writes take
                // modify faults (bare modified VAX) or are tracked by the
                // VMM (inside a VM).
                Pte::build(data_first_gpfn + vpn - 16, Protection::Uw, true, false)
            } else if (32..47).contains(&vpn) {
                // Demand-validated pages: the guest kernel's TNV handler
                // sets PTE<V> on first touch.
                Pte::build(data_first_gpfn + vpn - 16, Protection::Uw, false, false)
            } else if vpn == 47 {
                // User stack page.
                Pte::build(data_first_gpfn + 31, Protection::Uw, true, true)
            } else {
                Pte::build(0, Protection::Na, false, false)
            };
            p0t.extend_from_slice(&le(pte.raw()));
        }
        segments.push((l::p0t_gpa(proc), p0t));
    }

    Ok(GuestImage {
        segments,
        entry: l::KERNEL_GPA,
        mem_pages,
        symbols,
        config: config.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::Workload;

    #[test]
    fn image_builds_with_defaults() {
        let img = build_image(&OsConfig::default()).unwrap();
        assert_eq!(img.entry, l::KERNEL_GPA);
        assert!(img.mem_pages > 0x12000 / 512);
        assert!(img.symbols.contains_key("syscall"));
        // Segments must not overlap.
        let mut ranges: Vec<(u32, u32)> = img
            .segments
            .iter()
            .map(|(gpa, b)| (*gpa, *gpa + b.len() as u32))
            .collect();
        ranges.sort();
        for w in ranges.windows(2) {
            assert!(w[0].1 <= w[1].0, "overlap: {:x?}", w);
        }
    }

    #[test]
    fn nproc_out_of_range_rejected() {
        let cfg = OsConfig {
            nproc: 0,
            ..OsConfig::default()
        };
        assert!(build_image(&cfg).is_err());
        let cfg = OsConfig {
            nproc: 17,
            ..OsConfig::default()
        };
        assert!(build_image(&cfg).is_err());
    }

    #[test]
    fn all_workloads_build() {
        for w in [
            Workload::Compute,
            Workload::Editing,
            Workload::Transaction,
            Workload::Syscall,
            Workload::IplHeavy,
            Workload::Touch,
            Workload::Probe,
            Workload::Mixed,
        ] {
            let cfg = OsConfig {
                workload: w,
                ..OsConfig::default()
            };
            build_image(&cfg).unwrap();
        }
    }
}
