//! Drivers that boot a guest image on the bare machine or inside a VM
//! and collect comparable results — the apparatus behind the paper's
//! "performance in virtual machines was 47–48% of ... the unmodified
//! VAX 8800" measurement (§7.3) and the equivalence property.

use crate::image::GuestImage;
use crate::layout::{self as l, kvar};
use vax_arch::{MachineVariant, Psl};
use vax_cpu::{HaltReason, Machine, StepEvent};
use vax_dev::SimDisk;
use vax_vmm::{Monitor, MonitorConfig, RunExit, VmConfig, VmId};

/// Kernel counters read back from guest memory after a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelCounters {
    /// Timer ticks the guest observed.
    pub ticks: u32,
    /// Processes that exited.
    pub done: u32,
    /// Demand page validations (guest page faults).
    pub page_faults: u32,
    /// Modify faults the *guest* serviced (bare modified VAX only; a VM
    /// never sees them — Table 4, "no change" from the standard VAX).
    pub modify_faults: u32,
    /// Syscalls serviced.
    pub syscalls: u32,
    /// Disk operations.
    pub disk_ops: u32,
}

/// The outcome of one guest run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Did the guest reach its orderly shutdown (kernel HALT)?
    pub completed: bool,
    /// Console output.
    pub console: Vec<u8>,
    /// Simulated cycles consumed (for the bare run: machine cycles; for a
    /// VM: machine cycles including VMM work attributed to the VM).
    pub cycles: u64,
    /// Kernel counters snapshot.
    pub kernel: KernelCounters,
}

fn read_kernel_counters(read_u32: impl Fn(u32) -> Option<u32>) -> KernelCounters {
    let rd = |off: u32| read_u32(l::KDATA_GPA + off).unwrap_or(0);
    KernelCounters {
        ticks: rd(kvar::TICKS),
        done: rd(kvar::DONE),
        page_faults: rd(kvar::PF_COUNT),
        modify_faults: rd(kvar::MF_COUNT),
        syscalls: rd(kvar::SYS_COUNT),
        disk_ops: rd(kvar::IO_COUNT),
    }
}

/// Boots the image on a bare modified VAX (the paper's baseline: the
/// guest OS running directly on the hardware).
///
/// A [`SimDisk`] is attached at the architectural I/O space base so the
/// guest's memory-mapped driver works.
pub fn run_bare(image: &GuestImage, max_cycles: u64) -> RunOutcome {
    let mem_bytes = (image.mem_pages * 512).max(256 * 1024);
    let mut m = Machine::new(MachineVariant::Modified, mem_bytes);
    m.bus_mut().attach(
        vax_cpu::IO_BASE_PA,
        4096,
        Box::new(SimDisk::new(64, 2_000, 21, 0x100)),
    );
    for (gpa, bytes) in &image.segments {
        m.mem_mut().write_slice(*gpa, bytes).expect("image fits");
    }
    let mut psl = Psl::new();
    psl.set_ipl(31);
    m.set_psl(psl);
    m.set_pc(image.entry);

    let mut completed = false;
    while m.cycles() < max_cycles {
        match m.step() {
            StepEvent::Ok => {}
            StepEvent::Halted(HaltReason::HaltInstruction) => {
                completed = true;
                break;
            }
            StepEvent::Halted(_) | StepEvent::VmExit(_) => break,
        }
    }
    let kernel = read_kernel_counters(|gpa| m.mem().read_u32(gpa).ok());
    RunOutcome {
        completed,
        console: m.console_take_output(),
        cycles: m.cycles(),
        kernel,
    }
}

/// Creates a VM for the image inside an existing monitor and boots it.
pub fn boot_in_monitor(monitor: &mut Monitor, image: &GuestImage, vm_config: VmConfig) -> VmId {
    let mut cfg = vm_config;
    cfg.mem_pages = cfg.mem_pages.max(image.mem_pages);
    let vm = monitor.create_vm("guest", cfg);
    for (gpa, bytes) in &image.segments {
        monitor
            .vm_write_phys(vm, *gpa, bytes)
            .expect("image segment fits in VM memory");
    }
    monitor.boot_vm(vm, image.entry);
    vm
}

/// Boots the image in a fresh single-VM monitor and runs to completion
/// or the cycle budget.
pub fn run_in_vm(
    image: &GuestImage,
    monitor_config: MonitorConfig,
    vm_config: VmConfig,
    max_cycles: u64,
) -> (RunOutcome, Monitor, VmId) {
    let mut monitor = Monitor::new(monitor_config);
    let vm = boot_in_monitor(&mut monitor, image, vm_config);
    let exit = monitor.run(max_cycles);
    let completed = exit == RunExit::AllHalted;
    let kernel = read_kernel_counters(|gpa| monitor.vm_read_phys_u32(vm, gpa));
    let cycles = monitor.vm(vm).stats.cycles_run;
    let console = monitor.vm_console_output(vm);
    (
        RunOutcome {
            completed,
            console,
            cycles,
            kernel,
        },
        monitor,
        vm,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::build_image;
    use crate::kernel::{OsConfig, Workload};

    #[test]
    fn compute_guest_completes_on_bare_metal() {
        let img = build_image(&OsConfig {
            nproc: 2,
            workload: Workload::Compute,
            iterations: 2000,
            ..OsConfig::default()
        })
        .unwrap();
        let out = run_bare(&img, 50_000_000);
        assert!(
            out.completed,
            "guest must halt cleanly; console: {}",
            String::from_utf8_lossy(&out.console)
        );
        assert_eq!(out.kernel.done, 2);
        assert!(out.kernel.syscalls >= 2, "at least the two exits");
        assert!(out.kernel.ticks > 0, "timer ran");
    }
}
