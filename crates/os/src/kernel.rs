//! The guest kernel, written in VAX assembly.
//!
//! One kernel source serves both guest flavors:
//!
//! * **MiniVMS** uses all four access modes (user workloads CHMS into a
//!   supervisor service, which CHMEs into an executive service, which
//!   CHMKs into the kernel) — the stringent case the paper calls out
//!   (§4, footnote: "VMS uses all four VAX access modes").
//! * **MiniUltrix** uses two modes (kernel + user), like ULTRIX-32.
//!
//! The kernel is a real multiprogramming system: round-robin scheduling
//! off the interval timer with SVPCTX/LDPCTX, demand page validation,
//! a modify-fault handler (used on the bare modified VAX; inside a VM the
//! VMM absorbs those faults), syscalls via CHMK, and a disk driver that
//! probes the SID register at boot and selects the start-I/O `KCALL` path
//! on a virtual VAX or the memory-mapped CSR path on bare hardware —
//! exactly the "no more changes than expected for any new VAX model"
//! accommodation the paper describes.

use crate::layout::{self as l, kvar};

/// Guest flavor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Flavor {
    /// Four access modes, CHMS/CHME service layers.
    #[default]
    MiniVms,
    /// Two access modes; CHME/CHMS vector to the kill handler.
    MiniUltrix,
}

/// Per-process workload programs (see `workload.rs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Workload {
    /// Pure integer arithmetic.
    #[default]
    Compute,
    /// Interactive-editing mix: string moves, frequent syscalls, the
    /// four-mode CHM chain, demand-page touches.
    Editing,
    /// Transaction processing: record updates (modify-bit churn) with
    /// periodic disk commits.
    Transaction,
    /// Syscall-bound: tight yield loop (CHMK/REI heavy).
    Syscall,
    /// MTPR-to-IPL heavy (the paper's §7.3 hot path).
    IplHeavy,
    /// Page-touch sweep (shadow-fill / modify-fault stress).
    Touch,
    /// PROBE-heavy (argument validation stress).
    Probe,
    /// Process `i` runs workload `i mod 7` from the list above.
    Mixed,
    /// The paper's §7.3 benchmark mix: two interactive-editing processes
    /// for every transaction-processing process.
    EditTrans,
    /// Queue-instruction heavy (INSQUE/REMQUE work queues, VMS-style).
    Queue,
}

impl Workload {
    /// The dispatch id the user program sees in R10.
    pub fn id(self, proc: u32) -> u32 {
        match self {
            Workload::Compute => 0,
            Workload::Editing => 1,
            Workload::Transaction => 2,
            Workload::Syscall => 3,
            Workload::IplHeavy => 4,
            Workload::Touch => 5,
            Workload::Probe => 6,
            Workload::Mixed => proc % 7,
            Workload::EditTrans => {
                if proc % 3 < 2 {
                    1
                } else {
                    2
                }
            }
            Workload::Queue => 7,
        }
    }
}

/// Guest operating system build parameters.
#[derive(Debug, Clone)]
pub struct OsConfig {
    /// Guest flavor.
    pub flavor: Flavor,
    /// Number of processes (1..=16).
    pub nproc: u32,
    /// Workload selection.
    pub workload: Workload,
    /// Per-process workload iterations.
    pub iterations: u32,
    /// Scheduling quantum in timer ticks.
    pub quantum_ticks: u32,
    /// Timer tick length in cycles (NICR magnitude).
    pub tick_cycles: u32,
    /// Force the memory-mapped I/O driver even on a virtual VAX (the
    /// §4.4.3 ablation).
    pub force_mmio: bool,
}

impl Default for OsConfig {
    fn default() -> OsConfig {
        OsConfig {
            flavor: Flavor::MiniVms,
            nproc: 4,
            workload: Workload::Mixed,
            iterations: 40,
            quantum_ticks: 4,
            tick_cycles: 2000,
            force_mmio: false,
        }
    }
}

/// Emits the kernel assembly source for a configuration.
pub fn kernel_source(config: &OsConfig) -> String {
    let scb = l::SCB_GPA;
    let spt = l::SPT_GPA;
    let slr = l::GUEST_SLR;
    let boot_p0t_sva = 0x8000_0000u32 + l::BOOT_P0T_GPA;
    let istack = 0x8000_0000 + l::ISTACK_TOP;
    let boot_kstack = 0x8000_0000 + l::BOOT_KSTACK_TOP;
    let pcb_base = l::PCB_BASE;
    let pcb0 = l::pcb_gpa(0);
    let kd = |off: u32| 0x8000_0000 + l::KDATA_GPA + off;
    let v_ticks = kd(kvar::TICKS);
    let v_curproc = kd(kvar::CURPROC);
    let v_nproc = kd(kvar::NPROC);
    let v_done = kd(kvar::DONE);
    let v_is_vm = kd(kvar::IS_VM);
    let v_uptime = kd(kvar::UPTIME);
    let v_next = kd(kvar::NEXT);
    let v_quant = kd(kvar::QUANT);
    let v_pf = kd(kvar::PF_COUNT);
    let v_mf = kd(kvar::MF_COUNT);
    let v_sys = kd(kvar::SYS_COUNT);
    let v_io = kd(kvar::IO_COUNT);
    let v_force = kd(kvar::FORCE_MMIO);
    let v_state = kd(kvar::STATE);
    let v_ioflag = kd(kvar::IOFLAG);
    let ioblk = |i: u32| kd(kvar::IOBLK + 4 * i);
    let ioblk_gpa = l::KDATA_GPA + kvar::IOBLK;
    let uptime_gpa = l::KDATA_GPA + kvar::UPTIME;
    let quantum = config.quantum_ticks;
    let neg_tick = (config.tick_cycles as i32).wrapping_neg() as u32;
    let real_io = l::REAL_IO_SVA;
    let vm_io = l::VM_IO_SVA;

    let banner = match config.flavor {
        Flavor::MiniVms => "MiniVMS V1.0",
        Flavor::MiniUltrix => "MiniUltrix V1.0",
    };
    let mode_services = match config.flavor {
        Flavor::MiniVms => "
            .align 4
        exec_svc:                    ; CHME entry (executive mode)
            movl (sp)+, r7           ; change-mode code
            chmk #9                  ; nested kernel nop
            rei
            .align 4
        super_svc:                   ; CHMS entry (supervisor mode)
            movl (sp)+, r7
            chme #0                  ; nested executive call
            rei
            "
        .to_string(),
        Flavor::MiniUltrix => String::new(),
    };

    format!(
        "
        ; ====================================================== boot ====
        boot:                        ; entered at gpa {kernel:#x}, MAPEN off
            mtpr #{scb:#x}, #17      ; SCBB
            mtpr #{spt:#x}, #12      ; SBR
            mtpr #{slr}, #13         ; SLR
            mtpr #{boot_p0t_sva:#x}, #8  ; P0BR (boot identity map)
            mtpr #64, #9             ; P0LR
            mtpr #1, #56             ; MAPEN: next fetch via boot P0 map
            jmp @#main               ; and onward in S space
            .align 4
        main:
            movl #{boot_kstack:#x}, sp   ; kernel stacks live in S space
            mtpr #{istack:#x}, #4    ; ISP (S space)
            mfpr #62, r0             ; SID: which VAX is this?
            cmpl r0, #0x03000000
            bneq not_vm
            movl #1, @#{v_is_vm:#x}
            ; register the uptime cell with the VMM (KCALL func 4)
            movl #4, @#{ioblk0:#x}
            clrl @#{ioblk1:#x}
            movl #{uptime_gpa:#x}, @#{ioblk2:#x}
            clrl @#{ioblk3:#x}
            clrl @#{ioblk4:#x}
            mtpr #{ioblk_gpa:#x}, #201
        not_vm:
            ; boot banner through the console transmitter
            moval banner, r0
        ban_l:
            movzbl (r0)+, r1
            beql ban_done
            mtpr r1, #35
            brb ban_l
        ban_done:
            movl #{quantum}, @#{v_quant:#x}
            mtpr #{neg_tick:#x}, #25 ; NICR
            mtpr #0x51, #24          ; ICCS: RUN | IE | XFR
            mtpr #{pcb0:#x}, #16     ; PCBB = process 0
            ldpctx
            rei                      ; into user mode, IPL 0

        ; ================================================== scheduler ====
            .align 4
        pick_next:                   ; out r8 = next ready process
            pushl r0
            pushl r1
            movl @#{v_curproc:#x}, r8
            movl @#{v_nproc:#x}, r1
        pn_loop:
            incl r8
            cmpl r8, @#{v_nproc:#x}
            blss pn_chk
            clrl r8
        pn_chk:
            ashl #2, r8, r0
            addl2 #{v_state:#x}, r0
            tstl (r0)
            beql pn_out              ; 0 = ready
            sobgtr r1, pn_loop
            movl @#{v_curproc:#x}, r8
        pn_out:
            movl (sp)+, r1
            movl (sp)+, r0
            rsb

            .align 4
        timer:                       ; interval timer, IPL 24
            pushl r7
            pushl r8
            mtpr #0xC1, #24          ; ack: clear INT, keep RUN|IE
            incl @#{v_ticks:#x}
            decl @#{v_quant:#x}
            bgtr t_out
            movl #{quantum}, @#{v_quant:#x}
            jsb pick_next
            cmpl r8, @#{v_curproc:#x}
            beql t_out
            movl r8, @#{v_next:#x}
            movl (sp)+, r8           ; restore before SVPCTX saves them
            movl (sp)+, r7
            svpctx
            movl @#{v_next:#x}, r0
            movl r0, @#{v_curproc:#x}
            ashl #7, r0, r1
            addl2 #{pcb_base:#x}, r1
            mtpr r1, #16
            ldpctx
            rei
        t_out:
            movl (sp)+, r8
            movl (sp)+, r7
            rei

        ; =================================================== syscalls ====
        ; ABI: code selects the service; args in R0-R2; R7/R8 are
        ; kernel-clobbered; result in R0.
            .align 4
        syscall:
            mtpr #31, #18            ; kernel runs at high IPL
            incl @#{v_sys:#x}
            movl (sp)+, r7           ; change-mode code
            tstl r7
            bneq s1
            brw sys_yield
        s1: cmpl r7, #1
            bneq s2
            mtpr r0, #35             ; putchar: TXDB
            rei
        s2: cmpl r7, #2
            bneq s3
            brw sys_exit
        s3: cmpl r7, #3
            bneq s4
            brw sys_uptime
        s4: cmpl r7, #4
            bneq s5
            brw sys_iplburst
        s5: cmpl r7, #5
            bneq s6
            brw sys_probe
        s6: cmpl r7, #6
            bneq s7
            brw sys_dwrite
        s7: cmpl r7, #7
            bneq s8
            brw sys_dread
        s8: rei                      ; nop service (code 9 etc.)

            .align 4
        sys_yield:
            jsb pick_next
            cmpl r8, @#{v_curproc:#x}
            beql y_out
            movl r8, @#{v_next:#x}
            svpctx
            movl @#{v_next:#x}, r0
            movl r0, @#{v_curproc:#x}
            ashl #7, r0, r1
            addl2 #{pcb_base:#x}, r1
            mtpr r1, #16
            ldpctx
        y_out:
            rei

            .align 4
        sys_exit:
            movl @#{v_curproc:#x}, r7
            ashl #2, r7, r8
            addl2 #{v_state:#x}, r8
            movl #1, (r8)
            incl @#{v_done:#x}
            cmpl @#{v_done:#x}, @#{v_nproc:#x}
            blss e_pick
            mtpr #10, #35            ; final newline
            halt                     ; system shutdown
        e_pick:
            jsb pick_next
            movl r8, r0
            movl r0, @#{v_curproc:#x}
            ashl #7, r0, r1
            addl2 #{pcb_base:#x}, r1
            mtpr r1, #16
            ldpctx
            rei

            .align 4
        sys_uptime:                  ; paper (5): a VM reads the cell the
            tstl @#{v_is_vm:#x}      ; VMM maintains instead of counting
            beql u_bare              ; its own interrupts
            movl @#{v_uptime:#x}, r0
            rei
        u_bare:
            movl @#{v_ticks:#x}, r0
            rei

            .align 4
        sys_iplburst:                ; r0 = iterations of the hot path
        ib_l:
            mtpr #24, #18
            mtpr #31, #18
            sobgtr r0, ib_l
            rei

            .align 4
        sys_probe:                   ; r0 = count, r1 = user va
        pb_l:
            prober #3, #4, (r1)      ; validate as user (PSL<PRV>)
            probew #3, #4, (r1)
            sobgtr r0, pb_l
            rei

        ; ================================================ disk driver ====
        ; r0 = sector, r1 = page-aligned 512-byte user buffer va.
        ; R2-R4 are preserved (only R7/R8 are kernel-clobbered).
            .align 4
        sys_dwrite:
            movl #1, @#{v_ioflag:#x}
            brb disk_common
            .align 4
        sys_dread:
            clrl @#{v_ioflag:#x}
        disk_common:
            pushl r2
            pushl r3
            pushl r4
            incl @#{v_io:#x}
            tstl (r1)                ; fault the buffer in
            ; translate buffer va -> guest-physical (for KCALL)
            ashl #-9, r1, r2
            ashl #2, r2, r2
            mfpr #8, r3
            addl2 r3, r2
            movl (r2), r2
            bicl2 #0xFFE00000, r2    ; PTE<PFN>
            ashl #9, r2, r2
            movl r1, r3
            bicl2 #0xFFFFFE00, r3
            addl2 r3, r2             ; r2 = buffer gpa
            tstl @#{v_is_vm:#x}
            beql mmio_path
            tstl @#{v_force:#x}
            bneq mmio_path
            ; ---- start-I/O path (KCALL, paper 4.4.3) ----
            tstl @#{v_ioflag:#x}
            beql k_rd
            movl #2, @#{ioblk0:#x}
            brb k_go
        k_rd:
            movl #1, @#{ioblk0:#x}
        k_go:
            movl r0, @#{ioblk1:#x}
            movl r2, @#{ioblk2:#x}
            movl #512, @#{ioblk3:#x}
            clrl @#{ioblk4:#x}
            mtpr #{ioblk_gpa:#x}, #201
        k_poll:
            tstl @#{ioblk4:#x}
            beql k_poll
            brb disk_out
            ; ---- memory-mapped CSR path (bare hardware / ablation) ----
        mmio_path:
            movl #{real_io:#x}, r4
            tstl @#{v_is_vm:#x}
            beql mm_base
            movl #{vm_io:#x}, r4
        mm_base:
            movl r0, 4(r4)           ; SECTOR
            tstl @#{v_ioflag:#x}
            beql mm_read
            movl #128, r3
            movl r1, r2
        mm_wl:
            movl (r2)+, 8(r4)        ; stream to the DATA port
            sobgtr r3, mm_wl
            movl #5, (r4)            ; CSR = GO | FUNC_WRITE
            brb mm_poll
        mm_read:
            movl #3, (r4)            ; CSR = GO | FUNC_READ
        mm_poll:
            movl (r4), r3
            bicl2 #0xFFFFFF7F, r3    ; READY?
            beql mm_poll
            tstl @#{v_ioflag:#x}
            bneq disk_out
            movl #128, r3
            movl r1, r2
        mm_rl:
            movl 8(r4), (r2)+
            sobgtr r3, mm_rl
        disk_out:
            movl (sp)+, r4
            movl (sp)+, r3
            movl (sp)+, r2
            rei

        ; ======================================== memory management ====
            .align 4
        pagefault:                   ; TNV: demand-validate user data pages
            pushl r0
            pushl r1
            movl 12(sp), r0          ; faulting va
            ashl #-9, r0, r1         ; vpn
            cmpl r1, #16
            blss pf_bad
            cmpl r1, #47
            bgequ pf_bad
            ashl #2, r1, r1
            mfpr #8, r0
            addl2 r1, r0
            bisl2 #0x80000000, (r0)  ; set PTE<V>
            movl 12(sp), r1
            mtpr r1, #58             ; TBIS
            incl @#{v_pf:#x}
            movl (sp)+, r1
            movl (sp)+, r0
            addl2 #8, sp             ; drop fault parameters
            rei
        pf_bad:
            mtpr #70, #35            ; 'F'
            halt

            .align 4
        modifyfault:                 ; bare modified VAX only: set PTE<M>
            pushl r0
            pushl r1
            movl 8(sp), r0           ; faulting va
            ashl #-9, r0, r1
            ashl #2, r1, r1
            mfpr #8, r0
            addl2 r1, r0
            bisl2 #0x04000000, (r0)
            movl 8(sp), r1
            mtpr r1, #58
            incl @#{v_mf:#x}
            movl (sp)+, r1
            movl (sp)+, r0
            addl2 #4, sp
            rei

        ; ==================================================== others ====
            .align 4
        dismiss:                     ; device completion: nothing to do,
            rei                      ; the driver polls
            .align 4
        kill:                        ; unexpected exception
            mtpr #33, #35            ; '!'
            halt
        {mode_services}
            .align 4
        banner:
            .asciz \"{banner}\\n\"
        ",
        kernel = l::KERNEL_GPA,
        ioblk0 = ioblk(0),
        ioblk1 = ioblk(1),
        ioblk2 = ioblk(2),
        ioblk3 = ioblk(3),
        ioblk4 = ioblk(4),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_assembles_for_both_flavors() {
        for flavor in [Flavor::MiniVms, Flavor::MiniUltrix] {
            let cfg = OsConfig {
                flavor,
                ..OsConfig::default()
            };
            let src = kernel_source(&cfg);
            let (p, syms) = vax_asm::assemble_text_with_symbols(&src, 0x8000_0000 + l::KERNEL_GPA)
                .expect("kernel assembles");
            assert!(p.bytes.len() < 0x4000, "kernel fits its region");
            for required in [
                "boot",
                "syscall",
                "timer",
                "pagefault",
                "modifyfault",
                "kill",
            ] {
                assert!(syms.contains_key(required), "{required} missing");
            }
            if flavor == Flavor::MiniVms {
                assert!(syms.contains_key("exec_svc"));
                assert!(syms.contains_key("super_svc"));
            } else {
                assert!(!syms.contains_key("exec_svc"));
            }
            // Every vectored handler must be longword aligned.
            for h in [
                "main",
                "syscall",
                "timer",
                "pagefault",
                "modifyfault",
                "kill",
                "dismiss",
            ] {
                assert_eq!(syms[h] % 4, 0, "{h} unaligned");
            }
        }
    }

    #[test]
    fn workload_ids() {
        assert_eq!(Workload::Compute.id(3), 0);
        assert_eq!(Workload::Mixed.id(3), 3);
        assert_eq!(Workload::Mixed.id(9), 2);
        assert_eq!(Workload::Probe.id(0), 6);
    }
}
