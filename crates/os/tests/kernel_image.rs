//! Image-level checks: the generated kernels disassemble cleanly, the
//! SCB points at aligned handlers, and the page tables obey the layout.

use vax_arch::{Protection, Pte, ScbVector};
use vax_os::{build_image, layout, Flavor, OsConfig};

#[test]
fn kernel_and_user_code_disassemble_without_gaps() {
    for flavor in [Flavor::MiniVms, Flavor::MiniUltrix] {
        let img = build_image(&OsConfig {
            flavor,
            ..OsConfig::default()
        })
        .unwrap();
        for (gpa, label) in [
            (layout::KERNEL_GPA, "kernel"),
            (layout::USER_CODE_GPA, "user"),
        ] {
            let bytes = &img
                .segments
                .iter()
                .find(|(g, _)| *g == gpa)
                .expect("segment present")
                .1;
            let base = if gpa == layout::KERNEL_GPA {
                0x8000_0000 + gpa
            } else {
                0
            };
            // Code ends where the banner string data begins (kernel) or
            // at the image end (user program).
            let code_end = if gpa == layout::KERNEL_GPA {
                (img.symbols["banner"] - base) as usize
            } else {
                bytes.len()
            };
            let lines = vax_asm::disassemble(&bytes[..code_end], base);
            // Alignment padding (zero bytes) decodes as HALT — fine; what
            // must never appear is an undecodable byte.
            let bad: Vec<_> = lines
                .iter()
                .filter(|l| l.text.starts_with(".byte"))
                .collect();
            assert!(
                bad.is_empty(),
                "{flavor:?} {label}: undecodable bytes {bad:?}"
            );
        }
    }
}

#[test]
fn scb_vectors_are_aligned_kernel_addresses() {
    let img = build_image(&OsConfig::default()).unwrap();
    let scb = &img
        .segments
        .iter()
        .find(|(g, _)| *g == layout::SCB_GPA)
        .unwrap()
        .1;
    let kernel_base = 0x8000_0000 + layout::KERNEL_GPA;
    let kernel_end = kernel_base + 0x4000;
    for off in (0..scb.len()).step_by(4) {
        let v = u32::from_le_bytes(scb[off..off + 4].try_into().unwrap());
        assert_eq!(v % 4, 0, "vector {off:#x} unaligned: {v:#x}");
        assert!(
            (kernel_base..kernel_end).contains(&v),
            "vector {off:#x} outside kernel: {v:#x}"
        );
    }
    // Spot-check the important ones against the symbol table.
    for (vector, symbol) in [
        (ScbVector::Chmk.offset(), "syscall"),
        (ScbVector::IntervalTimer.offset(), "timer"),
        (ScbVector::TranslationNotValid.offset(), "pagefault"),
        (ScbVector::ModifyFault.offset(), "modifyfault"),
    ] {
        let v = u32::from_le_bytes(
            scb[vector as usize..vector as usize + 4]
                .try_into()
                .unwrap(),
        );
        assert_eq!(v, img.symbols[symbol], "{symbol}");
    }
}

#[test]
fn guest_page_tables_obey_the_layout_contract() {
    let nproc = 5;
    let img = build_image(&OsConfig {
        nproc,
        ..OsConfig::default()
    })
    .unwrap();
    // SPT: every in-memory page identity-mapped; I/O vpns special.
    let spt = &img
        .segments
        .iter()
        .find(|(g, _)| *g == layout::SPT_GPA)
        .unwrap()
        .1;
    let pte_at = |vpn: u32| {
        Pte::from_raw(u32::from_le_bytes(
            spt[(vpn * 4) as usize..(vpn * 4 + 4) as usize]
                .try_into()
                .unwrap(),
        ))
    };
    for vpn in 0..img.mem_pages {
        let pte = pte_at(vpn);
        assert!(pte.valid(), "S vpn {vpn}");
        assert_eq!(pte.pfn(), vpn, "identity");
        assert!(pte.modified(), "premodified to avoid kernel modify faults");
    }
    assert_eq!(
        pte_at(layout::REAL_IO_SVPN).pfn(),
        vax_cpu::IO_BASE_PA >> 9,
        "bare-metal I/O window"
    );
    assert_eq!(
        pte_at(layout::VM_IO_SVPN).pfn(),
        vax_vmm::GUEST_IO_GPFN_BASE,
        "virtual-machine I/O window"
    );

    // Per-process P0 tables: code read-only for user; boot-valid data
    // with M clear; demand region invalid; distinct frames per process.
    for proc in 0..nproc {
        let p0t = &img
            .segments
            .iter()
            .find(|(g, _)| *g == layout::p0t_gpa(proc))
            .unwrap()
            .1;
        let pte_at = |vpn: u32| {
            Pte::from_raw(u32::from_le_bytes(
                p0t[(vpn * 4) as usize..(vpn * 4 + 4) as usize]
                    .try_into()
                    .unwrap(),
            ))
        };
        assert_eq!(pte_at(0).protection(), Protection::Ur, "code is UR");
        assert!(pte_at(0).valid());
        let data = pte_at(16);
        assert!(data.valid() && !data.modified(), "data valid, M clear");
        assert_eq!(data.protection(), Protection::Uw);
        assert_eq!(
            data.pfn(),
            layout::user_data_gpa(proc) >> 9,
            "per-process frames"
        );
        assert!(!pte_at(40).valid(), "demand region starts invalid");
        assert!(pte_at(47).valid(), "stack page valid");
    }
}

#[test]
fn pcbs_use_s_space_stacks_and_user_entry() {
    let img = build_image(&OsConfig::default()).unwrap();
    let pcb = &img
        .segments
        .iter()
        .find(|(g, _)| *g == layout::pcb_gpa(0))
        .unwrap()
        .1;
    let word = |off: usize| u32::from_le_bytes(pcb[off..off + 4].try_into().unwrap());
    assert!(word(0) >= 0x8000_0000, "KSP is an S address");
    assert!(word(4) >= 0x8000_0000, "ESP is an S address");
    assert!(word(8) >= 0x8000_0000, "SSP is an S address");
    assert_eq!(word(12), layout::USER_SP);
    assert_eq!(word(72), layout::USER_CODE_VA, "PC = user entry");
    assert_eq!(word(84), layout::USER_P0LR);
}
