//! Hand-rolled wire primitives: little-endian fields, length-prefixed
//! blobs, zero-page run-length coding, and the FNV-1a checksum.
//!
//! The format is written and parsed by this crate alone — no serde, no
//! derive magic — because the determinism contract demands byte-for-byte
//! reproducible output and the security posture demands that every read
//! be bounds-checked. [`Reader`] never allocates more than the input can
//! justify: length prefixes are validated against the bytes actually
//! remaining before any buffer is sized from them.

use crate::error::SnapshotError;

/// 64-bit FNV-1a over `bytes` — small, dependency-free, and stable
/// across platforms, which is all a corruption check needs (this is an
/// integrity checksum, not an authenticity MAC).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Append-only little-endian field writer.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Writer {
        Writer::default()
    }

    /// The accumulated bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Raw bytes, no length prefix.
    pub fn bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    /// One byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// A bool as one byte (0 or 1).
    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    /// Little-endian u16.
    pub fn u16(&mut self, v: u16) {
        self.bytes(&v.to_le_bytes());
    }

    /// Little-endian u32.
    pub fn u32(&mut self, v: u32) {
        self.bytes(&v.to_le_bytes());
    }

    /// Little-endian u64.
    pub fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    /// Little-endian i64 (two's complement).
    pub fn i64(&mut self, v: i64) {
        self.bytes(&v.to_le_bytes());
    }

    /// A u32 length prefix followed by the bytes.
    pub fn blob(&mut self, b: &[u8]) {
        self.u32(b.len() as u32);
        self.bytes(b);
    }

    /// A string as a blob of UTF-8.
    pub fn str(&mut self, s: &str) {
        self.blob(s.as_bytes());
    }

    /// An optional u32 (presence byte + value).
    pub fn opt_u32(&mut self, v: Option<u32>) {
        match v {
            Some(x) => {
                self.bool(true);
                self.u32(x);
            }
            None => self.bool(false),
        }
    }

    /// Page-granular zero-run-length coding: `data` (whose length must be
    /// a multiple of `page`) becomes alternating runs of
    /// `(tag, page_count[, literal bytes])` where tag 0 is an all-zero
    /// run and tag 1 carries the pages verbatim. Guest images are mostly
    /// zero pages, so this is the entire compression story.
    pub fn rle_pages(&mut self, data: &[u8], page: usize) {
        debug_assert_eq!(data.len() % page, 0);
        let total = data.len() / page;
        self.u32(total as u32);
        let is_zero = |p: usize| data[p * page..(p + 1) * page].iter().all(|&b| b == 0);
        let mut p = 0;
        while p < total {
            let zero = is_zero(p);
            let mut end = p + 1;
            while end < total && is_zero(end) == zero {
                end += 1;
            }
            self.u8(u8::from(!zero));
            self.u32((end - p) as u32);
            if !zero {
                self.bytes(&data[p * page..end * page]);
            }
            p = end;
        }
    }
}

/// Bounds-checked little-endian field reader over an untrusted image.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over the whole of `buf`.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Takes `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.remaining() < n {
            return Err(SnapshotError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// One byte.
    pub fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    /// A strict bool: only 0 and 1 are valid encodings.
    pub fn bool(&mut self, what: &'static str) -> Result<bool, SnapshotError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapshotError::BadDiscriminant { what }),
        }
    }

    /// Little-endian u16.
    pub fn u16(&mut self) -> Result<u16, SnapshotError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Little-endian u32.
    pub fn u32(&mut self) -> Result<u32, SnapshotError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Little-endian u64.
    pub fn u64(&mut self) -> Result<u64, SnapshotError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    /// Little-endian i64.
    pub fn i64(&mut self) -> Result<i64, SnapshotError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(i64::from_le_bytes(a))
    }

    /// A length-prefixed blob. The prefix is validated against the bytes
    /// remaining before any allocation, so a hostile length cannot force
    /// an over-size buffer.
    pub fn blob(&mut self) -> Result<&'a [u8], SnapshotError> {
        let len = self.u32()? as usize;
        self.take(len)
    }

    /// A blob with a caller-imposed length cap (names, diagnostics).
    pub fn blob_capped(
        &mut self,
        cap: usize,
        what: &'static str,
    ) -> Result<&'a [u8], SnapshotError> {
        let b = self.blob()?;
        if b.len() > cap {
            return Err(SnapshotError::Invalid { what });
        }
        Ok(b)
    }

    /// A capped UTF-8 string.
    pub fn str_capped(&mut self, cap: usize, what: &'static str) -> Result<&'a str, SnapshotError> {
        let b = self.blob_capped(cap, what)?;
        core::str::from_utf8(b).map_err(|_| SnapshotError::Invalid { what })
    }

    /// An optional u32.
    pub fn opt_u32(&mut self, what: &'static str) -> Result<Option<u32>, SnapshotError> {
        Ok(if self.bool(what)? {
            Some(self.u32()?)
        } else {
            None
        })
    }

    /// Decodes a [`Writer::rle_pages`] stream whose decoded size must be
    /// exactly `expect_pages * page` bytes. Run counts are validated
    /// against the expected total before any copy, bounding the
    /// allocation by the caller's expectation rather than the image's
    /// claims.
    pub fn rle_pages(
        &mut self,
        expect_pages: usize,
        page: usize,
        what: &'static str,
    ) -> Result<Vec<u8>, SnapshotError> {
        let total = self.u32()? as usize;
        if total != expect_pages {
            return Err(SnapshotError::Invalid { what });
        }
        self.rle_body(total, page, what)
    }

    /// The run-coded body of an RLE stream whose page count (`total`) the
    /// caller has already read and validated — the delta decoder's path,
    /// where extent sizes come from the stream itself and must be checked
    /// against caps and the materialization budget *before* this
    /// allocates `total * page` bytes.
    pub fn rle_body(
        &mut self,
        total: usize,
        page: usize,
        what: &'static str,
    ) -> Result<Vec<u8>, SnapshotError> {
        let mut out = vec![0u8; total * page];
        let mut p = 0usize;
        while p < total {
            let literal = match self.u8()? {
                0 => false,
                1 => true,
                _ => return Err(SnapshotError::BadDiscriminant { what }),
            };
            let run = self.u32()? as usize;
            if run == 0 || run > total - p {
                return Err(SnapshotError::Invalid { what });
            }
            if literal {
                let bytes = self.take(run * page)?;
                out[p * page..(p + run) * page].copy_from_slice(bytes);
            }
            p += run;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trip() {
        let mut w = Writer::new();
        w.u8(0xab);
        w.u16(0x1234);
        w.u32(0xdead_beef);
        w.u64(u64::MAX - 7);
        w.i64(-42);
        w.bool(true);
        w.opt_u32(Some(9));
        w.opt_u32(None);
        w.str("héllo");
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 0xab);
        assert_eq!(r.u16().unwrap(), 0x1234);
        assert_eq!(r.u32().unwrap(), 0xdead_beef);
        assert_eq!(r.u64().unwrap(), u64::MAX - 7);
        assert_eq!(r.i64().unwrap(), -42);
        assert!(r.bool("b").unwrap());
        assert_eq!(r.opt_u32("o").unwrap(), Some(9));
        assert_eq!(r.opt_u32("o").unwrap(), None);
        assert_eq!(r.str_capped(16, "s").unwrap(), "héllo");
        assert!(r.is_empty());
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut w = Writer::new();
        w.u64(7);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = Reader::new(&bytes[..cut]);
            assert_eq!(r.u64(), Err(SnapshotError::Truncated), "cut at {cut}");
        }
    }

    #[test]
    fn hostile_blob_length_cannot_force_allocation() {
        let mut w = Writer::new();
        w.u32(u32::MAX); // promises 4 GiB that are not there
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.blob(), Err(SnapshotError::Truncated));
    }

    #[test]
    fn rle_round_trips_sparse_and_dense_data() {
        const PAGE: usize = 8;
        for data in [
            vec![0u8; 64],
            {
                let mut d = vec![0u8; 64];
                d[17] = 3;
                d[40..48].fill(0xff);
                d
            },
            (0..64u8).collect::<Vec<u8>>(),
        ] {
            let mut w = Writer::new();
            w.rle_pages(&data, PAGE);
            let bytes = w.into_bytes();
            let mut r = Reader::new(&bytes);
            assert_eq!(r.rle_pages(8, PAGE, "m").unwrap(), data);
            assert!(r.is_empty());
        }
    }

    #[test]
    fn rle_zero_dominant_image_is_small() {
        let mut data = vec![0u8; 512 * 1024];
        data[0] = 1;
        let mut w = Writer::new();
        w.rle_pages(&data, 512);
        assert!(
            w.len() < 600,
            "1 literal page + run headers, got {}",
            w.len()
        );
    }

    #[test]
    fn rle_rejects_run_overflow_and_wrong_total() {
        const PAGE: usize = 8;
        let mut w = Writer::new();
        w.u32(4); // 4 pages
        w.u8(0);
        w.u32(9); // zero run longer than the image
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(matches!(
            r.rle_pages(4, PAGE, "m"),
            Err(SnapshotError::Invalid { .. })
        ));
        let mut w = Writer::new();
        w.rle_pages(&[0u8; 32], PAGE);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(matches!(
            r.rle_pages(5, PAGE, "m"),
            Err(SnapshotError::Invalid { .. })
        ));
    }

    #[test]
    fn fnv_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }
}
