//! The `VAXSNAP1` wire format: framing, field order, and validation.
//!
//! Layout (DESIGN.md §13):
//!
//! ```text
//! magic    "VAXSNAP1"            8 bytes
//! version  u32                   currently 1
//! length   u64                   payload byte count
//! payload  ...                   monitor config, scheduler, machine
//!                                state, memory (zero-page RLE), VMs
//! checksum u64                   FNV-1a 64 over the payload
//! ```
//!
//! Every multi-byte field is little-endian. [`encode`] is a pure
//! function of the captured image — identical state encodes to identical
//! bytes, which is what lets tests assert snapshot determinism as byte
//! equality. [`decode`] treats the image as untrusted input: every
//! discriminant is range-checked, every length validated against both
//! the bytes present and the format's own caps, and every cross-field
//! inconsistency (a `current` index past the VM count, a memory image
//! that disagrees with the configured size) is an error — so the
//! reconstruction path behind it can never panic.

use crate::error::SnapshotError;
use crate::image::{MonitorImage, VmImage};
use crate::wire::{fnv1a64, Reader, Writer};
use std::collections::VecDeque;
use vax_arch::{AccessMode, CostModel, Protection, Psl, VmPsl};
use vax_cpu::{CpuCounters, IrqRequest, MachineState, TimerState};
use vax_mem::{MemCounters, MmuState, TlbEntry, TlbState};
use vax_vmm::vm::{VirtualIrq, VirtualTimer};
use vax_vmm::{
    intern_diagnostic, DirtyStrategy, IoStrategy, MonitorConfig, SchedulerState, ShadowCacheState,
    ShadowConfig, Vm, VmConfig, VmState, VmmCosts, VmmError,
};

/// The file magic.
pub const MAGIC: &[u8; 8] = b"VAXSNAP1";
/// The format version this build writes and the only one it reads.
/// Version 2 added the machine's write-tracking enablement flag so an
/// incremental-snapshot chain keeps producing deltas after a restore.
pub const VERSION: u32 = 2;

pub(crate) const PAGE: usize = 512;

// Structural caps. Each bounds an allocation or a reconstruction cost
// that a length prefix alone cannot (zero RLE runs and table capacities
// expand beyond their encoded size).
pub(crate) const MAX_MEM_BYTES: u32 = 1 << 30;
pub(crate) const MAX_VMS: u32 = 256;
const MAX_TLB_SLOTS: u32 = 1 << 16;
const MAX_NAME: usize = 256;
const MAX_DIAG: usize = 256;
const MAX_LOG_LINES: u32 = 1 << 16;
const MAX_LOG_LINE: usize = 4096;
const MAX_CONSOLE: usize = 1 << 24;
const MAX_VDISK_SECTORS: u32 = 1 << 20;
const MAX_PENDING: u32 = 4096;
const MAX_CACHE_SLOTS: u32 = 4096;
const MAX_TABLE_PAGES: u32 = 1 << 22;

// Global materialization budget. The per-field caps above bound each
// allocation individually; this bounds their *sum*, so a few-KB hostile
// image cannot claim the memory cap plus 256 maximal zero-RLE vdisks
// (~129 GiB) one legal field at a time. [`validate_caps`] enforces the
// same budget at capture, so a monitor that snapshots is a monitor that
// restores.
pub(crate) const MAX_TOTAL_BYTES: u64 = 2 * MAX_MEM_BYTES as u64;

/// Deducts `bytes` of materialized decode output from the budget.
pub(crate) fn charge(remaining: &mut u64, bytes: u64) -> Result<(), SnapshotError> {
    if bytes > *remaining {
        return Err(SnapshotError::Invalid {
            what: "image over decode size budget",
        });
    }
    *remaining -= bytes;
    Ok(())
}

/// Frames the payload: magic, version, length, payload, checksum.
pub fn encode(image: &MonitorImage) -> Vec<u8> {
    let mut p = Writer::new();
    write_payload(&mut p, image);
    let payload = p.into_bytes();
    let mut w = Writer::new();
    w.bytes(MAGIC);
    w.u32(VERSION);
    w.u64(payload.len() as u64);
    w.bytes(&payload);
    w.u64(fnv1a64(&payload));
    w.into_bytes()
}

/// Parses and fully validates an image. After this returns `Ok`, the
/// reconstruction in [`crate::image::rebuild`] cannot hit a panicking
/// importer.
pub fn decode(bytes: &[u8]) -> Result<MonitorImage, SnapshotError> {
    decode_with_budget(bytes, MAX_TOTAL_BYTES)
}

/// [`decode`] with an explicit materialization budget — the seam that
/// lets tests exercise the aggregate limit without multi-GiB images.
pub(crate) fn decode_with_budget(bytes: &[u8], budget: u64) -> Result<MonitorImage, SnapshotError> {
    let mut r = Reader::new(bytes);
    if r.take(8)? != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = r.u32()?;
    if version != VERSION {
        return Err(SnapshotError::UnsupportedVersion { found: version });
    }
    let len = usize::try_from(r.u64()?).map_err(|_| SnapshotError::Truncated)?;
    let payload = r.take(len)?;
    let expected = r.u64()?;
    if !r.is_empty() {
        return Err(SnapshotError::TrailingBytes);
    }
    let actual = fnv1a64(payload);
    if actual != expected {
        return Err(SnapshotError::Checksum { expected, actual });
    }
    let mut p = Reader::new(payload);
    let mut remaining = budget;
    let image = read_payload(&mut p, &mut remaining)?;
    if !p.is_empty() {
        return Err(SnapshotError::TrailingBytes);
    }
    Ok(image)
}

/// Checks a captured image against every structural cap [`decode`]
/// enforces, including the aggregate [`MAX_TOTAL_BYTES`] budget. Called
/// by [`crate::image::capture`] so that a monitor whose legitimate
/// running state outgrew the wire format (an undrained console past
/// [`MAX_CONSOLE`], a marathon `vmm_log`) fails **at snapshot** with
/// [`SnapshotError::Unsupported`] — never the trap of an image that
/// encodes fine but can never be restored.
pub(crate) fn validate_caps(image: &MonitorImage) -> Result<(), SnapshotError> {
    validate_caps_with_budget(image, MAX_TOTAL_BYTES)
}

/// [`validate_caps`] with an explicit aggregate budget (test seam).
pub(crate) fn validate_caps_with_budget(
    image: &MonitorImage,
    budget: u64,
) -> Result<(), SnapshotError> {
    let unsupported = |what| Err(SnapshotError::Unsupported { what });
    let diag_fits = |e: VmmError| match e {
        VmmError::Undeliverable { what }
        | VmmError::GuestState { what }
        | VmmError::Mmio { what }
        | VmmError::Internal { what }
        | VmmError::Snapshot { what } => what.len() <= MAX_DIAG,
        _ => true,
    };
    if image.config.mem_bytes > MAX_MEM_BYTES {
        return unsupported("machine memory over snapshot cap");
    }
    // The wire format carries memory as whole pages; decode rejects a
    // misaligned size, so refuse to capture one.
    if !image.config.mem_bytes.is_multiple_of(PAGE as u32) {
        return unsupported("machine memory not page-aligned");
    }
    if image.vms.len() > MAX_VMS as usize {
        return unsupported("VM count over snapshot cap");
    }
    let m = &image.machine;
    if m.mmu.tlb.slots.len() > MAX_TLB_SLOTS as usize {
        return unsupported("TLB slot count over snapshot cap");
    }
    if m.pending_irqs.len() > MAX_PENDING as usize {
        return unsupported("pending interrupt count over snapshot cap");
    }
    if m.console_tx.len() > MAX_CONSOLE || m.console_rx.len() > MAX_CONSOLE {
        return unsupported("machine console buffer over snapshot cap");
    }
    // Mirror of decode's running total: memory by configured size, then
    // every variable-length buffer the decoder materializes.
    let mut total =
        u64::from(image.config.mem_bytes) + m.console_tx.len() as u64 + m.console_rx.len() as u64;
    for vm in &image.vms {
        if vm.vm.name.len() > MAX_NAME {
            return unsupported("VM name over snapshot cap");
        }
        let s = &vm.config.shadow;
        if s.s_capacity > MAX_TABLE_PAGES
            || s.p0_capacity > MAX_TABLE_PAGES
            || s.p1_capacity > MAX_TABLE_PAGES
            || s.cache_slots > MAX_CACHE_SLOTS as usize
        {
            return unsupported("shadow configuration over snapshot cap");
        }
        if vm.vm.console_out.len() > MAX_CONSOLE || vm.vm.console_in.len() > MAX_CONSOLE {
            return unsupported("VM console buffer over snapshot cap");
        }
        if vm.vm.vmm_log.len() > MAX_LOG_LINES as usize {
            return unsupported("VMM log line count over snapshot cap");
        }
        if vm.vm.vmm_log.iter().any(|l| l.len() > MAX_LOG_LINE) {
            return unsupported("VMM log line over snapshot cap");
        }
        if vm.vm.vdisk.len() > MAX_VDISK_SECTORS as usize {
            return unsupported("virtual disk over snapshot cap");
        }
        if vm.vm.pending_virqs.len() > MAX_PENDING as usize {
            return unsupported("pending virtual interrupt count over snapshot cap");
        }
        if let Some(e) = vm.vm.halt_reason {
            if !diag_fits(e) {
                return unsupported("halt diagnostic over snapshot cap");
            }
        }
        total += vm.vm.console_out.len() as u64
            + vm.vm.console_in.len() as u64
            + vm.vm.vmm_log.iter().map(|l| l.len() as u64).sum::<u64>()
            + vm.vm.vdisk.len() as u64 * PAGE as u64;
    }
    if total > budget {
        return unsupported("monitor state over snapshot size budget");
    }
    Ok(())
}

fn write_payload(w: &mut Writer, image: &MonitorImage) {
    write_monitor_config(w, &image.config);
    write_scheduler(w, &image.sched);
    write_machine(w, &image.machine);
    w.rle_pages(&image.memory, PAGE);
    w.u32(image.vms.len() as u32);
    for vm in &image.vms {
        write_vm_config(w, &vm.config);
        write_vm(w, &vm.vm);
        write_shadow(w, &vm.shadow);
    }
}

fn read_payload(r: &mut Reader<'_>, remaining: &mut u64) -> Result<MonitorImage, SnapshotError> {
    let config = read_monitor_config(r)?;
    let sched = read_scheduler(r)?;
    let machine = read_machine(r, remaining)?;
    let mem_pages = (config.mem_bytes / PAGE as u32) as usize;
    charge(remaining, u64::from(config.mem_bytes))?;
    let memory = r.rle_pages(mem_pages, PAGE, "memory image")?;
    let vm_count = r.u32()?;
    if vm_count > MAX_VMS {
        return Err(SnapshotError::Invalid {
            what: "VM count over format cap",
        });
    }
    if let Some(current) = sched.current {
        if current >= vm_count as usize {
            return Err(SnapshotError::Invalid {
                what: "current VM index out of range",
            });
        }
    }
    let mut vms = Vec::new();
    for _ in 0..vm_count {
        let vm_config = read_vm_config(r)?;
        let vm = read_vm(r, &vm_config, remaining)?;
        let shadow = read_shadow(r, &vm_config)?;
        vms.push(VmImage {
            config: vm_config,
            vm,
            shadow,
        });
    }
    Ok(MonitorImage {
        config,
        sched,
        machine,
        memory,
        vms,
    })
}

// ---- monitor-level state ----

pub(crate) fn write_monitor_config(w: &mut Writer, c: &MonitorConfig) {
    w.u32(c.mem_bytes);
    w.u64(c.quantum);
    w.u64(c.wait_timeout);
    w.u64(c.vdisk_latency);
    let v = &c.costs;
    for field in [
        v.dispatch,
        v.chm,
        v.rei,
        v.mtpr_ipl,
        v.mtpr_other,
        v.shadow_fill,
        v.modify_fault,
        v.reflect,
        v.virq_delivery,
        v.context_switch,
        v.kcall,
        v.mmio_access,
        v.wait,
        v.world_switch,
    ] {
        w.u64(field);
    }
}

pub(crate) fn read_monitor_config(r: &mut Reader<'_>) -> Result<MonitorConfig, SnapshotError> {
    let mem_bytes = r.u32()?;
    if mem_bytes == 0 || mem_bytes % PAGE as u32 != 0 || mem_bytes > MAX_MEM_BYTES {
        return Err(SnapshotError::Invalid {
            what: "machine memory size",
        });
    }
    let quantum = r.u64()?;
    if quantum == 0 {
        return Err(SnapshotError::Invalid {
            what: "zero scheduling quantum",
        });
    }
    let wait_timeout = r.u64()?;
    let vdisk_latency = r.u64()?;
    let mut f = [0u64; 14];
    for slot in &mut f {
        *slot = r.u64()?;
    }
    Ok(MonitorConfig {
        mem_bytes,
        quantum,
        wait_timeout,
        vdisk_latency,
        costs: VmmCosts {
            dispatch: f[0],
            chm: f[1],
            rei: f[2],
            mtpr_ipl: f[3],
            mtpr_other: f[4],
            shadow_fill: f[5],
            modify_fault: f[6],
            reflect: f[7],
            virq_delivery: f[8],
            context_switch: f[9],
            kcall: f[10],
            mmio_access: f[11],
            wait: f[12],
            world_switch: f[13],
        },
    })
}

pub(crate) fn write_scheduler(w: &mut Writer, s: &SchedulerState) {
    w.opt_u32(s.current.map(|c| c as u32));
    w.u64(s.vmm_cycles);
    w.u64(s.world_switches);
}

pub(crate) fn read_scheduler(r: &mut Reader<'_>) -> Result<SchedulerState, SnapshotError> {
    Ok(SchedulerState {
        current: r.opt_u32("current VM")?.map(|c| c as usize),
        vmm_cycles: r.u64()?,
        world_switches: r.u64()?,
    })
}

// ---- machine state ----

fn write_vmpsl(w: &mut Writer, v: VmPsl) {
    w.u8(v.cur_mode().bits() as u8);
    w.u8(v.prv_mode().bits() as u8);
    w.u8(v.ipl());
}

fn read_vmpsl(r: &mut Reader<'_>) -> Result<VmPsl, SnapshotError> {
    let cur = r.u8()?;
    let prv = r.u8()?;
    let ipl = r.u8()?;
    if cur > 3 || prv > 3 {
        return Err(SnapshotError::BadDiscriminant { what: "VMPSL mode" });
    }
    if ipl > 31 {
        return Err(SnapshotError::BadDiscriminant { what: "VMPSL IPL" });
    }
    Ok(VmPsl::new(
        AccessMode::from_bits(u32::from(cur)),
        AccessMode::from_bits(u32::from(prv)),
    )
    .with_ipl(ipl))
}

fn write_cost_model(w: &mut Writer, c: &CostModel) {
    for field in [
        c.base_instruction,
        c.memory_reference,
        c.tlb_miss_system,
        c.tlb_miss_process,
        c.exception_entry,
        c.rei,
        c.chm,
        c.mtpr_ipl_fast,
        c.mtpr_other,
        c.context_switch,
        c.probe_fast,
        c.probevm,
        c.movpsl,
        c.string_per_byte,
        c.set_modify_bit,
        c.vm_emulation_trap,
        c.device_csr,
    ] {
        w.u64(field);
    }
}

fn read_cost_model(r: &mut Reader<'_>) -> Result<CostModel, SnapshotError> {
    let mut f = [0u64; 17];
    for slot in &mut f {
        *slot = r.u64()?;
    }
    Ok(CostModel {
        base_instruction: f[0],
        memory_reference: f[1],
        tlb_miss_system: f[2],
        tlb_miss_process: f[3],
        exception_entry: f[4],
        rei: f[5],
        chm: f[6],
        mtpr_ipl_fast: f[7],
        mtpr_other: f[8],
        context_switch: f[9],
        probe_fast: f[10],
        probevm: f[11],
        movpsl: f[12],
        string_per_byte: f[13],
        set_modify_bit: f[14],
        vm_emulation_trap: f[15],
        device_csr: f[16],
    })
}

fn write_counters(w: &mut Writer, c: &CpuCounters) {
    for field in [
        c.instructions,
        c.exceptions,
        c.interrupts,
        c.chm,
        c.rei,
        c.movpsl,
        c.probe,
        c.probevm,
        c.mtpr_ipl,
        c.mtpr_other,
        c.vm_emulation_traps,
        c.vm_exception_exits,
        c.vm_interrupt_exits,
        c.context_switches,
        c.device_csr_accesses,
        c.tlb_hits,
        c.tlb_misses,
    ] {
        w.u64(field);
    }
}

fn read_counters(r: &mut Reader<'_>) -> Result<CpuCounters, SnapshotError> {
    let mut f = [0u64; 17];
    for slot in &mut f {
        *slot = r.u64()?;
    }
    Ok(CpuCounters {
        instructions: f[0],
        exceptions: f[1],
        interrupts: f[2],
        chm: f[3],
        rei: f[4],
        movpsl: f[5],
        probe: f[6],
        probevm: f[7],
        mtpr_ipl: f[8],
        mtpr_other: f[9],
        vm_emulation_traps: f[10],
        vm_exception_exits: f[11],
        vm_interrupt_exits: f[12],
        context_switches: f[13],
        device_csr_accesses: f[14],
        tlb_hits: f[15],
        tlb_misses: f[16],
    })
}

fn write_tlb(w: &mut Writer, t: &TlbState) {
    w.u32(t.slots.len() as u32);
    for slot in &t.slots {
        match slot {
            None => w.bool(false),
            Some(e) => {
                w.bool(true);
                w.u32(e.tag);
                w.u32(e.pfn);
                w.u8(e.prot.bits() as u8);
                w.bool(e.modified);
                w.u32(e.pte_pa);
                w.bool(e.process);
            }
        }
    }
    w.u64(t.hits);
    w.u64(t.misses);
}

fn read_tlb(r: &mut Reader<'_>) -> Result<TlbState, SnapshotError> {
    let n = r.u32()?;
    // Tlb::import_state asserts on a non-power-of-two count; reject
    // here so the importer can never fire.
    if n == 0 || !n.is_power_of_two() || n > MAX_TLB_SLOTS {
        return Err(SnapshotError::Invalid {
            what: "TLB slot count",
        });
    }
    let mut slots = Vec::with_capacity(n as usize);
    for _ in 0..n {
        if r.bool("TLB slot presence")? {
            let tag = r.u32()?;
            let pfn = r.u32()?;
            let prot = r.u8()?;
            if prot > 0xf {
                return Err(SnapshotError::BadDiscriminant {
                    what: "TLB protection code",
                });
            }
            let modified = r.bool("TLB modified bit")?;
            let pte_pa = r.u32()?;
            let process = r.bool("TLB process bit")?;
            slots.push(Some(TlbEntry {
                tag,
                pfn,
                prot: Protection::from_bits(u32::from(prot)),
                modified,
                pte_pa,
                process,
            }));
        } else {
            slots.push(None);
        }
    }
    Ok(TlbState {
        slots,
        hits: r.u64()?,
        misses: r.u64()?,
    })
}

fn write_mmu(w: &mut Writer, m: &MmuState) {
    w.bool(m.mapen);
    w.u32(m.p0br);
    w.u32(m.p0lr);
    w.u32(m.p1br);
    w.u32(m.p1lr);
    w.u32(m.sbr);
    w.u32(m.slr);
    w.bool(m.modify_fault_enabled);
    w.u64(m.counters.walks);
    w.u64(m.counters.m_bit_sets);
    w.u64(m.counters.modify_faults);
    write_tlb(w, &m.tlb);
}

fn read_mmu(r: &mut Reader<'_>) -> Result<MmuState, SnapshotError> {
    Ok(MmuState {
        mapen: r.bool("MAPEN")?,
        p0br: r.u32()?,
        p0lr: r.u32()?,
        p1br: r.u32()?,
        p1lr: r.u32()?,
        sbr: r.u32()?,
        slr: r.u32()?,
        modify_fault_enabled: r.bool("modify-fault enable")?,
        counters: MemCounters {
            walks: r.u64()?,
            m_bit_sets: r.u64()?,
            modify_faults: r.u64()?,
        },
        tlb: read_tlb(r)?,
    })
}

pub(crate) fn write_machine(w: &mut Writer, m: &MachineState) {
    for reg in m.regs {
        w.u32(reg);
    }
    w.u32(m.psl_raw);
    write_vmpsl(w, m.vmpsl);
    for sp in m.sp_bank {
        w.u32(sp);
    }
    w.u32(m.scbb);
    w.u32(m.pcbb);
    w.u32(m.astlvl);
    w.u16(m.sisr);
    w.u32(m.todr);
    w.u64(m.todr_acc);
    write_cost_model(w, &m.costs);
    write_mmu(w, &m.mmu);
    w.blob(&m.console_tx);
    w.blob(&m.console_rx);
    w.u32(m.timer.iccs);
    w.i64(m.timer.nicr);
    w.i64(m.timer.icr);
    w.u32(m.pending_irqs.len() as u32);
    for irq in &m.pending_irqs {
        w.u8(irq.ipl);
        w.u16(irq.vector);
    }
    w.u64(m.cycles);
    w.u64(m.exit_stamp);
    write_counters(w, &m.counters);
    w.bool(m.halted);
    w.bool(m.write_tracking);
}

pub(crate) fn read_machine(
    r: &mut Reader<'_>,
    remaining: &mut u64,
) -> Result<MachineState, SnapshotError> {
    let mut regs = [0u32; 16];
    for reg in &mut regs {
        *reg = r.u32()?;
    }
    let psl_raw = r.u32()?;
    let vmpsl = read_vmpsl(r)?;
    let mut sp_bank = [0u32; 5];
    for sp in &mut sp_bank {
        *sp = r.u32()?;
    }
    let scbb = r.u32()?;
    let pcbb = r.u32()?;
    let astlvl = r.u32()?;
    let sisr = r.u16()?;
    let todr = r.u32()?;
    let todr_acc = r.u64()?;
    let costs = read_cost_model(r)?;
    let mmu = read_mmu(r)?;
    let console_tx = r.blob_capped(MAX_CONSOLE, "console output length")?;
    charge(remaining, console_tx.len() as u64)?;
    let console_tx = console_tx.to_vec();
    let console_rx = r.blob_capped(MAX_CONSOLE, "console input length")?;
    charge(remaining, console_rx.len() as u64)?;
    let console_rx = console_rx.to_vec();
    let timer = TimerState {
        iccs: r.u32()?,
        nicr: r.i64()?,
        icr: r.i64()?,
    };
    let n_irqs = r.u32()?;
    if n_irqs > MAX_PENDING {
        return Err(SnapshotError::Invalid {
            what: "pending interrupt count",
        });
    }
    let mut pending_irqs = Vec::new();
    for _ in 0..n_irqs {
        pending_irqs.push(IrqRequest {
            ipl: r.u8()?,
            vector: r.u16()?,
        });
    }
    Ok(MachineState {
        regs,
        psl_raw,
        vmpsl,
        sp_bank,
        scbb,
        pcbb,
        astlvl,
        sisr,
        todr,
        todr_acc,
        costs,
        mmu,
        console_tx,
        console_rx,
        timer,
        pending_irqs,
        cycles: r.u64()?,
        exit_stamp: r.u64()?,
        counters: read_counters(r)?,
        halted: r.bool("halted")?,
        write_tracking: r.bool("write tracking")?,
    })
}

// ---- per-VM state ----

pub(crate) fn write_vm_config(w: &mut Writer, c: &VmConfig) {
    w.u32(c.mem_pages);
    w.u32(c.shadow.s_capacity);
    w.u32(c.shadow.p0_capacity);
    w.u32(c.shadow.p1_capacity);
    w.u32(c.shadow.cache_slots as u32);
    w.u32(c.shadow.prefill_group);
    w.u8(match c.io_strategy {
        IoStrategy::StartIo => 0,
        IoStrategy::EmulatedMmio => 1,
    });
    w.u8(match c.dirty_strategy {
        DirtyStrategy::ModifyFault => 0,
        DirtyStrategy::ReadOnlyShadow => 1,
    });
    w.u32(c.vdisk_sectors);
}

pub(crate) fn read_vm_config(r: &mut Reader<'_>) -> Result<VmConfig, SnapshotError> {
    let mem_pages = r.u32()?;
    if mem_pages == 0 || mem_pages > MAX_MEM_BYTES / PAGE as u32 {
        return Err(SnapshotError::Invalid {
            what: "VM memory size",
        });
    }
    let s_capacity = r.u32()?;
    let p0_capacity = r.u32()?;
    let p1_capacity = r.u32()?;
    if s_capacity > MAX_TABLE_PAGES
        || p0_capacity > MAX_TABLE_PAGES
        || p1_capacity > MAX_TABLE_PAGES
    {
        return Err(SnapshotError::Invalid {
            what: "shadow capacity over format cap",
        });
    }
    let cache_slots = r.u32()?;
    // ShadowSet::new asserts at least one slot; reject zero here.
    if cache_slots == 0 || cache_slots > MAX_CACHE_SLOTS {
        return Err(SnapshotError::Invalid {
            what: "shadow cache slot count",
        });
    }
    let prefill_group = r.u32()?;
    if prefill_group == 0 {
        return Err(SnapshotError::Invalid {
            what: "zero prefill group",
        });
    }
    let io_strategy = match r.u8()? {
        0 => IoStrategy::StartIo,
        1 => {
            // The capture side refuses EmulatedMmio VMs; an image
            // claiming one is either corrupt or from a future format.
            return Err(SnapshotError::Unsupported {
                what: "EmulatedMmio VM in snapshot",
            });
        }
        _ => {
            return Err(SnapshotError::BadDiscriminant {
                what: "I/O strategy",
            })
        }
    };
    let dirty_strategy = match r.u8()? {
        0 => DirtyStrategy::ModifyFault,
        1 => DirtyStrategy::ReadOnlyShadow,
        _ => {
            return Err(SnapshotError::BadDiscriminant {
                what: "dirty-bit strategy",
            })
        }
    };
    let vdisk_sectors = r.u32()?;
    if vdisk_sectors > MAX_VDISK_SECTORS {
        return Err(SnapshotError::Invalid {
            what: "virtual disk size",
        });
    }
    Ok(VmConfig {
        mem_pages,
        shadow: ShadowConfig {
            s_capacity,
            p0_capacity,
            p1_capacity,
            cache_slots: cache_slots as usize,
            prefill_group,
        },
        io_strategy,
        dirty_strategy,
        vdisk_sectors,
    })
}

fn write_vmm_error(w: &mut Writer, e: VmmError) {
    match e {
        VmmError::PageTableWalk { gpa } => {
            w.u8(0);
            w.u32(gpa);
        }
        VmmError::ProcessBaseNotS { base } => {
            w.u8(1);
            w.u32(base);
        }
        VmmError::PteFrame { gpfn } => {
            w.u8(2);
            w.u32(gpfn);
        }
        VmmError::NonexistentMemory { gpa } => {
            w.u8(3);
            w.u32(gpa);
        }
        VmmError::RealMachineCheck { code } => {
            w.u8(4);
            w.u32(code);
        }
        VmmError::Undeliverable { what } => {
            w.u8(5);
            w.str(what);
        }
        VmmError::GuestState { what } => {
            w.u8(6);
            w.str(what);
        }
        VmmError::Mmio { what } => {
            w.u8(7);
            w.str(what);
        }
        VmmError::Internal { what } => {
            w.u8(8);
            w.str(what);
        }
        VmmError::DiskSector { sector, capacity } => {
            w.u8(9);
            w.u32(sector);
            w.u32(capacity);
        }
        VmmError::DiskBuffer { len } => {
            w.u8(10);
            w.u64(len as u64);
        }
        VmmError::GuestRange { gpa, len } => {
            w.u8(11);
            w.u32(gpa);
            w.u32(len);
        }
        VmmError::Snapshot { what } => {
            w.u8(12);
            w.str(what);
        }
    }
}

fn read_vmm_error(r: &mut Reader<'_>) -> Result<VmmError, SnapshotError> {
    let diag = |r: &mut Reader<'_>| -> Result<&'static str, SnapshotError> {
        Ok(intern_diagnostic(
            r.str_capped(MAX_DIAG, "diagnostic message")?,
        ))
    };
    Ok(match r.u8()? {
        0 => VmmError::PageTableWalk { gpa: r.u32()? },
        1 => VmmError::ProcessBaseNotS { base: r.u32()? },
        2 => VmmError::PteFrame { gpfn: r.u32()? },
        3 => VmmError::NonexistentMemory { gpa: r.u32()? },
        4 => VmmError::RealMachineCheck { code: r.u32()? },
        5 => VmmError::Undeliverable { what: diag(r)? },
        6 => VmmError::GuestState { what: diag(r)? },
        7 => VmmError::Mmio { what: diag(r)? },
        8 => VmmError::Internal { what: diag(r)? },
        9 => VmmError::DiskSector {
            sector: r.u32()?,
            capacity: r.u32()?,
        },
        10 => VmmError::DiskBuffer {
            len: usize::try_from(r.u64()?).map_err(|_| SnapshotError::Invalid {
                what: "disk buffer length",
            })?,
        },
        11 => VmmError::GuestRange {
            gpa: r.u32()?,
            len: r.u32()?,
        },
        12 => VmmError::Snapshot { what: diag(r)? },
        _ => {
            return Err(SnapshotError::BadDiscriminant {
                what: "halt reason",
            })
        }
    })
}

pub(crate) fn write_vm(w: &mut Writer, v: &Vm) {
    w.str(&v.name);
    w.u32(v.mem_base_pfn);
    w.u32(v.mem_pages);
    for reg in v.regs {
        w.u32(reg);
    }
    w.u32(v.psl_flags.raw());
    write_vmpsl(w, v.vmpsl);
    for sp in v.vsp {
        w.u32(sp);
    }
    w.u32(v.vsp_is);
    w.bool(v.v_is);
    w.u32(v.guest_scbb);
    w.u32(v.guest_pcbb);
    w.u32(v.guest_sbr);
    w.u32(v.guest_slr);
    w.u32(v.guest_p0br);
    w.u32(v.guest_p0lr);
    w.u32(v.guest_p1br);
    w.u32(v.guest_p1lr);
    w.bool(v.guest_mapen);
    w.u32(v.guest_astlvl);
    w.u16(v.guest_sisr);
    w.u32(v.guest_todr);
    w.u32(v.vtimer.iccs);
    w.i64(v.vtimer.nicr);
    w.i64(v.vtimer.icr);
    w.blob(&v.console_out);
    w.u32(v.vmm_log.len() as u32);
    for line in &v.vmm_log {
        w.str(line);
    }
    let console_in: Vec<u8> = v.console_in.iter().copied().collect();
    w.blob(&console_in);
    let mut disk = Vec::with_capacity(v.vdisk.len() * PAGE);
    for sector in &v.vdisk {
        disk.extend_from_slice(sector);
    }
    w.rle_pages(&disk, PAGE);
    match v.vdisk_pending {
        None => w.bool(false),
        Some((at, irq, status_gpa)) => {
            w.bool(true);
            w.u64(at);
            w.u8(irq.ipl);
            w.u16(irq.vector);
            w.u32(status_gpa);
        }
    }
    w.opt_u32(v.uptime_cell);
    match v.state {
        VmState::Ready => w.u8(0),
        VmState::Idle { until } => {
            w.u8(1);
            w.u64(until);
        }
        VmState::ConsoleHalt => w.u8(2),
    }
    match v.halt_reason {
        None => w.bool(false),
        Some(e) => {
            w.bool(true);
            write_vmm_error(w, e);
        }
    }
    w.u32(v.pending_virqs.len() as u32);
    for irq in &v.pending_virqs {
        w.u8(irq.ipl);
        w.u16(irq.vector);
    }
    w.u32(v.uptime_ticks);
    let s = &v.stats;
    for field in [
        s.cycles_run,
        s.vmm_cycles,
        s.emulation_traps,
        s.chm,
        s.rei,
        s.mtpr_ipl,
        s.mtpr_other,
        s.shadow_fills,
        s.shadow_faults,
        s.modify_faults,
        s.dirty_upgrades,
        s.probew_extra_traps,
        s.reflected,
        s.virqs,
        s.guest_context_switches,
        s.shadow_cache_hits,
        s.shadow_cache_misses,
        s.kcalls,
        s.mmio_accesses,
        s.waits,
        s.guest_page_faults,
        s.machine_checks,
    ] {
        w.u64(field);
    }
}

pub(crate) fn read_vm(
    r: &mut Reader<'_>,
    config: &VmConfig,
    remaining: &mut u64,
) -> Result<Vm, SnapshotError> {
    let name = r.str_capped(MAX_NAME, "VM name length")?.to_string();
    let mem_base_pfn = r.u32()?;
    let mem_pages = r.u32()?;
    if mem_pages != config.mem_pages {
        return Err(SnapshotError::Invalid {
            what: "VM memory size disagrees with its config",
        });
    }
    let mut regs = [0u32; 16];
    for reg in &mut regs {
        *reg = r.u32()?;
    }
    let psl_flags = Psl::from_raw(r.u32()?);
    let vmpsl = read_vmpsl(r)?;
    let mut vsp = [0u32; 4];
    for sp in &mut vsp {
        *sp = r.u32()?;
    }
    let vsp_is = r.u32()?;
    let v_is = r.bool("virtual interrupt-stack flag")?;
    let guest_scbb = r.u32()?;
    let guest_pcbb = r.u32()?;
    let guest_sbr = r.u32()?;
    let guest_slr = r.u32()?;
    let guest_p0br = r.u32()?;
    let guest_p0lr = r.u32()?;
    let guest_p1br = r.u32()?;
    let guest_p1lr = r.u32()?;
    let guest_mapen = r.bool("guest MAPEN")?;
    let guest_astlvl = r.u32()?;
    let guest_sisr = r.u16()?;
    let guest_todr = r.u32()?;
    let vtimer = VirtualTimer {
        iccs: r.u32()?,
        nicr: r.i64()?,
        icr: r.i64()?,
    };
    let console_out = r.blob_capped(MAX_CONSOLE, "console output length")?;
    charge(remaining, console_out.len() as u64)?;
    let console_out = console_out.to_vec();
    let n_log = r.u32()?;
    if n_log > MAX_LOG_LINES {
        return Err(SnapshotError::Invalid {
            what: "VMM log line count",
        });
    }
    let mut vmm_log = Vec::new();
    for _ in 0..n_log {
        let line = r.str_capped(MAX_LOG_LINE, "VMM log line length")?;
        charge(remaining, line.len() as u64)?;
        vmm_log.push(line.to_string());
    }
    let console_in = r.blob_capped(MAX_CONSOLE, "console input length")?;
    charge(remaining, console_in.len() as u64)?;
    let console_in: VecDeque<u8> = console_in.iter().copied().collect();
    charge(remaining, u64::from(config.vdisk_sectors) * PAGE as u64)?;
    let disk = r.rle_pages(config.vdisk_sectors as usize, PAGE, "virtual disk image")?;
    let mut vdisk = Vec::with_capacity(config.vdisk_sectors as usize);
    for chunk in disk.chunks_exact(PAGE) {
        let mut sector = [0u8; 512];
        sector.copy_from_slice(chunk);
        vdisk.push(sector);
    }
    let vdisk_pending = if r.bool("pending disk I/O presence")? {
        let at = r.u64()?;
        let irq = VirtualIrq {
            ipl: r.u8()?,
            vector: r.u16()?,
        };
        Some((at, irq, r.u32()?))
    } else {
        None
    };
    let uptime_cell = r.opt_u32("uptime cell")?;
    let state = match r.u8()? {
        0 => VmState::Ready,
        1 => VmState::Idle { until: r.u64()? },
        2 => VmState::ConsoleHalt,
        _ => return Err(SnapshotError::BadDiscriminant { what: "VM state" }),
    };
    let halt_reason = if r.bool("halt reason presence")? {
        Some(read_vmm_error(r)?)
    } else {
        None
    };
    let n_virqs = r.u32()?;
    if n_virqs > MAX_PENDING {
        return Err(SnapshotError::Invalid {
            what: "pending virtual interrupt count",
        });
    }
    let mut pending_virqs = Vec::new();
    for _ in 0..n_virqs {
        pending_virqs.push(VirtualIrq {
            ipl: r.u8()?,
            vector: r.u16()?,
        });
    }
    let uptime_ticks = r.u32()?;
    let mut f = [0u64; 22];
    for slot in &mut f {
        *slot = r.u64()?;
    }
    Ok(Vm {
        name,
        mem_base_pfn,
        mem_pages,
        regs,
        psl_flags,
        vmpsl,
        vsp,
        vsp_is,
        v_is,
        guest_scbb,
        guest_pcbb,
        guest_sbr,
        guest_slr,
        guest_p0br,
        guest_p0lr,
        guest_p1br,
        guest_p1lr,
        guest_mapen,
        guest_astlvl,
        guest_sisr,
        guest_todr,
        vtimer,
        console_out,
        vmm_log,
        console_in,
        vdisk,
        vdisk_pending,
        uptime_cell,
        real_io_base: None,
        io_strategy: config.io_strategy,
        dirty_strategy: config.dirty_strategy,
        state,
        halt_reason,
        pending_virqs,
        uptime_ticks,
        stats: vax_vmm::VmStats {
            cycles_run: f[0],
            vmm_cycles: f[1],
            emulation_traps: f[2],
            chm: f[3],
            rei: f[4],
            mtpr_ipl: f[5],
            mtpr_other: f[6],
            shadow_fills: f[7],
            shadow_faults: f[8],
            modify_faults: f[9],
            dirty_upgrades: f[10],
            probew_extra_traps: f[11],
            reflected: f[12],
            virqs: f[13],
            guest_context_switches: f[14],
            shadow_cache_hits: f[15],
            shadow_cache_misses: f[16],
            kcalls: f[17],
            mmio_accesses: f[18],
            waits: f[19],
            guest_page_faults: f[20],
            machine_checks: f[21],
        },
    })
}

pub(crate) fn write_shadow(w: &mut Writer, s: &ShadowCacheState) {
    // Slot count is implied by the VM config's cache_slots.
    for key in &s.keys {
        w.opt_u32(*key);
    }
    for lu in &s.last_used {
        w.u64(*lu);
    }
    w.u32(s.active as u32);
    w.u64(s.clock);
    w.u64(s.evictions);
    w.u64(s.invalidations);
}

pub(crate) fn read_shadow(
    r: &mut Reader<'_>,
    config: &VmConfig,
) -> Result<ShadowCacheState, SnapshotError> {
    let slots = config.shadow.cache_slots;
    let mut keys = Vec::new();
    for _ in 0..slots {
        keys.push(r.opt_u32("shadow slot key")?);
    }
    let mut last_used = Vec::new();
    for _ in 0..slots {
        last_used.push(r.u64()?);
    }
    let active = r.u32()? as usize;
    // ShadowSet::import_cache_state asserts on these; reject here.
    if active >= slots {
        return Err(SnapshotError::Invalid {
            what: "active shadow slot out of range",
        });
    }
    Ok(ShadowCacheState {
        keys,
        last_used,
        active,
        clock: r.u64()?,
        evictions: r.u64()?,
        invalidations: r.u64()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::capture;
    use vax_vmm::Monitor;

    fn captured() -> (MonitorImage, Vec<u8>) {
        let mut m = Monitor::new(MonitorConfig::default());
        m.create_vm("a", VmConfig::default());
        m.create_vm("b", VmConfig::default());
        let image = capture(&m, true).expect("capture");
        let bytes = encode(&image);
        (image, bytes)
    }

    #[test]
    fn decode_enforces_an_aggregate_materialization_budget() {
        let (image, bytes) = captured();
        assert!(decode_with_budget(&bytes, MAX_TOTAL_BYTES).is_ok());
        // Every field here is within its individual cap; only the
        // running total trips. Memory alone consumes this budget, so
        // the first vdisk charge goes over.
        let err = decode_with_budget(&bytes, u64::from(image.config.mem_bytes))
            .expect_err("aggregate over budget");
        assert_eq!(err.what(), "image over decode size budget");
        // A budget below even the memory image fails on the memory
        // charge, before its allocation.
        assert!(decode_with_budget(&bytes, 1024).is_err());
    }

    #[test]
    fn capture_validation_mirrors_the_decode_budget() {
        let (image, _) = captured();
        assert!(validate_caps(&image).is_ok());
        let err = validate_caps_with_budget(&image, u64::from(image.config.mem_bytes))
            .expect_err("over budget");
        assert_eq!(err.what(), "monitor state over snapshot size budget");
    }
}
