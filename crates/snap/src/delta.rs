//! The `VAXDLT1` incremental-delta wire format and the snapshot chain
//! built on it (DESIGN.md §16).
//!
//! A delta carries everything a full snapshot does *except* the memory
//! image: in place of the full zero-RLE memory section it records only
//! the pages written since the previous link of the chain, as sorted,
//! non-overlapping extents of consecutive dirty pages. Capture consumes
//! [`vax_mem::PhysMemory::take_dirty_pages`] — the draining seam the
//! write tracker exposes — so producing a delta is `O(dirty)`, not
//! `O(memory)`.
//!
//! Layout:
//!
//! ```text
//! magic    "VAXDLT1\0"            8 bytes
//! version  u32                    currently 1
//! length   u64                    payload byte count
//! payload  parent digest (u64)    FNV-1a 64 of the complete predecessor
//!                                 image bytes (base snapshot or prior
//!                                 delta)
//!          monitor config, scheduler, machine state
//!          VM count + per-VM config/state/shadow
//!          extent count (u32)
//!          per extent: start pfn (u32) + pages (zero-page RLE)
//! checksum u64                    FNV-1a 64 over the payload
//! ```
//!
//! The parent digest makes the chain self-validating: [`restore_chain`]
//! refuses a delta whose recorded digest does not match the bytes of the
//! image it is being applied on top of, so a wrong base, a reordered
//! chain, or a corrupted predecessor all surface as errors before any
//! state is touched. Decoding enforces the same structural caps and the
//! same aggregate materialization budget as `VAXSNAP1` decode: extent
//! sizes are validated against the configured memory and charged against
//! the budget *before* any allocation, so a hostile few-KB delta cannot
//! claim gigabytes.

use crate::error::SnapshotError;
use crate::format::{
    charge, read_machine, read_monitor_config, read_scheduler, read_shadow, read_vm,
    read_vm_config, write_machine, write_monitor_config, write_scheduler, write_shadow, write_vm,
    write_vm_config, MAX_TOTAL_BYTES, MAX_VMS, PAGE,
};
use crate::image::{capture, rebuild, MemSource, MonitorImage, VmImage};
use crate::wire::{fnv1a64, Reader, Writer};
use vax_vmm::Monitor;

/// The delta file magic (NUL-padded to the same width as `VAXSNAP1`).
pub const DELTA_MAGIC: &[u8; 8] = b"VAXDLT1\0";
/// The delta format version this build writes and the only one it reads.
pub const DELTA_VERSION: u32 = 1;

/// The digest [`restore_chain`] links images by: FNV-1a 64 over the
/// complete byte image (header, payload, and checksum) of a base
/// snapshot or a delta. Feed it the bytes [`crate::snapshot_monitor`] or
/// [`snapshot_delta`] returned to name that image as the parent of the
/// next delta.
pub fn snapshot_digest(bytes: &[u8]) -> u64 {
    fnv1a64(bytes)
}

/// A run of consecutive pages written since the previous chain link.
#[derive(Debug, Clone)]
pub struct DeltaExtent {
    /// First page number of the run (machine-physical, 512-byte pages).
    pub start_pfn: u32,
    /// The run's contents; length is a non-zero multiple of the page
    /// size.
    pub data: Vec<u8>,
}

impl DeltaExtent {
    fn pages(&self) -> u32 {
        (self.data.len() / PAGE) as u32
    }
}

/// A decoded delta: the full non-memory monitor state at capture time,
/// plus the dirty-page extents that patch the predecessor's memory
/// forward.
#[derive(Debug, Clone)]
pub struct DeltaImage {
    /// [`snapshot_digest`] of the predecessor image's bytes.
    pub parent_digest: u64,
    /// Complete monitor state minus memory ([`MonitorImage::memory`] is
    /// empty).
    pub image: MonitorImage,
    /// Sorted, non-overlapping dirty-page runs.
    pub extents: Vec<DeltaExtent>,
}

/// Frames and encodes a delta. Like [`crate::encode`], a pure function
/// of the image: identical state and dirty set produce identical bytes.
pub fn encode_delta(delta: &DeltaImage) -> Vec<u8> {
    let mut p = Writer::new();
    p.u64(delta.parent_digest);
    write_monitor_config(&mut p, &delta.image.config);
    write_scheduler(&mut p, &delta.image.sched);
    write_machine(&mut p, &delta.image.machine);
    p.u32(delta.image.vms.len() as u32);
    for vm in &delta.image.vms {
        write_vm_config(&mut p, &vm.config);
        write_vm(&mut p, &vm.vm);
        write_shadow(&mut p, &vm.shadow);
    }
    p.u32(delta.extents.len() as u32);
    for e in &delta.extents {
        p.u32(e.start_pfn);
        p.rle_pages(&e.data, PAGE);
    }
    let payload = p.into_bytes();
    let mut w = Writer::new();
    w.bytes(DELTA_MAGIC);
    w.u32(DELTA_VERSION);
    w.u64(payload.len() as u64);
    w.bytes(&payload);
    w.u64(fnv1a64(&payload));
    w.into_bytes()
}

/// Parses and fully validates a delta image. Untrusted input: framing,
/// checksum, every discriminant, extent ordering and bounds, and the
/// aggregate materialization budget are all checked — a malformed delta
/// is an error, never a panic or an over-size allocation.
pub fn decode_delta(bytes: &[u8]) -> Result<DeltaImage, SnapshotError> {
    decode_delta_with_budget(bytes, MAX_TOTAL_BYTES)
}

/// [`decode_delta`] with an explicit materialization budget (test seam).
pub(crate) fn decode_delta_with_budget(
    bytes: &[u8],
    budget: u64,
) -> Result<DeltaImage, SnapshotError> {
    let mut r = Reader::new(bytes);
    if r.take(8)? != DELTA_MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = r.u32()?;
    if version != DELTA_VERSION {
        return Err(SnapshotError::UnsupportedVersion { found: version });
    }
    let len = usize::try_from(r.u64()?).map_err(|_| SnapshotError::Truncated)?;
    let payload = r.take(len)?;
    let expected = r.u64()?;
    if !r.is_empty() {
        return Err(SnapshotError::TrailingBytes);
    }
    let actual = fnv1a64(payload);
    if actual != expected {
        return Err(SnapshotError::Checksum { expected, actual });
    }
    let mut p = Reader::new(payload);
    let mut remaining = budget;
    let delta = read_delta_payload(&mut p, &mut remaining)?;
    if !p.is_empty() {
        return Err(SnapshotError::TrailingBytes);
    }
    Ok(delta)
}

fn read_delta_payload(
    r: &mut Reader<'_>,
    remaining: &mut u64,
) -> Result<DeltaImage, SnapshotError> {
    let parent_digest = r.u64()?;
    let config = read_monitor_config(r)?;
    let sched = read_scheduler(r)?;
    let machine = read_machine(r, remaining)?;
    let vm_count = r.u32()?;
    if vm_count > MAX_VMS {
        return Err(SnapshotError::Invalid {
            what: "VM count over format cap",
        });
    }
    if let Some(current) = sched.current {
        if current >= vm_count as usize {
            return Err(SnapshotError::Invalid {
                what: "current VM index out of range",
            });
        }
    }
    let mut vms = Vec::new();
    for _ in 0..vm_count {
        let vm_config = read_vm_config(r)?;
        let vm = read_vm(r, &vm_config, remaining)?;
        let shadow = read_shadow(r, &vm_config)?;
        vms.push(VmImage {
            config: vm_config,
            vm,
            shadow,
        });
    }
    let mem_pages = config.mem_bytes / PAGE as u32;
    let extent_count = r.u32()?;
    // Extents are non-empty and non-overlapping, so more of them than
    // pages cannot be legal.
    if extent_count > mem_pages {
        return Err(SnapshotError::Invalid {
            what: "delta extent count over memory size",
        });
    }
    let mut extents = Vec::new();
    // First page number not yet covered; enforces sorted + disjoint.
    let mut next_free = 0u32;
    for _ in 0..extent_count {
        let start_pfn = r.u32()?;
        if start_pfn < next_free || start_pfn >= mem_pages {
            return Err(SnapshotError::Invalid {
                what: "delta extents unsorted or out of range",
            });
        }
        let pages = r.u32()?;
        if pages == 0 || pages > mem_pages - start_pfn {
            return Err(SnapshotError::Invalid {
                what: "delta extent size out of range",
            });
        }
        charge(remaining, u64::from(pages) * PAGE as u64)?;
        let data = r.rle_body(pages as usize, PAGE, "delta extent")?;
        next_free = start_pfn + pages;
        extents.push(DeltaExtent { start_pfn, data });
    }
    Ok(DeltaImage {
        parent_digest,
        image: MonitorImage {
            config,
            sched,
            machine,
            memory: Vec::new(),
            vms,
        },
        extents,
    })
}

/// Patches `base` forward by one delta: the non-memory state is replaced
/// wholesale (a delta carries it completely), and each extent overwrites
/// its page run in the memory image.
pub(crate) fn apply_delta(base: &mut MonitorImage, delta: DeltaImage) -> Result<(), SnapshotError> {
    if delta.image.config.mem_bytes != base.config.mem_bytes {
        return Err(SnapshotError::Invalid {
            what: "delta memory size disagrees with base",
        });
    }
    for e in &delta.extents {
        let start = e.start_pfn as usize * PAGE;
        let end = start
            .checked_add(e.data.len())
            .filter(|&end| end <= base.memory.len())
            .ok_or(SnapshotError::Invalid {
                what: "delta extent past end of memory",
            })?;
        base.memory[start..end].copy_from_slice(&e.data);
    }
    base.config = delta.image.config;
    base.sched = delta.image.sched;
    base.machine = delta.image.machine;
    base.vms = delta.image.vms;
    Ok(())
}

/// Captures a full snapshot to anchor a delta chain: identical bytes to
/// [`crate::snapshot_monitor`], but also *drains* the dirty-page set,
/// so the first [`snapshot_delta`] carries only pages written after
/// this capture rather than everything written since tracking was
/// enabled. Requires write tracking for the same reason
/// `snapshot_delta` does.
///
/// # Errors
///
/// The conditions of [`snapshot_delta`]. The dirty set is not drained
/// on error.
pub fn snapshot_chain_base(monitor: &mut Monitor) -> Result<Vec<u8>, SnapshotError> {
    if !monitor.machine().mem().write_tracking_enabled() {
        return Err(SnapshotError::Unsupported {
            what: "delta snapshot requires write tracking",
        });
    }
    let bytes = crate::snapshot_monitor(monitor)?;
    let _ = monitor.machine_mut().mem_mut().take_dirty_pages();
    Ok(bytes)
}

/// Serializes the pages written since the previous chain link, plus the
/// complete non-memory monitor state, into a `VAXDLT1` delta image —
/// `O(dirty pages)`, not `O(memory)`.
///
/// `parent_digest` is [`snapshot_digest`] of the predecessor's bytes:
/// the base snapshot for the first delta, the previous delta after that.
/// The call *drains* the machine's dirty-page set, so the next delta
/// picks up exactly where this one left off. The chain contract: write
/// tracking must already be enabled when the base snapshot is taken
/// (enable it, snapshot, run, delta, run, delta, …); a page written
/// before tracking was enabled but after the base would silently go
/// missing, which is why this function refuses to run without tracking.
///
/// # Errors
///
/// [`SnapshotError::Unsupported`] if write tracking is off (an empty
/// delta would be produced no matter what the guest wrote — an error,
/// not silent data loss) or capture hits a structural cap; the
/// conditions of [`crate::snapshot_monitor`] otherwise. The dirty set
/// is not drained on error.
pub fn snapshot_delta(monitor: &mut Monitor, parent_digest: u64) -> Result<Vec<u8>, SnapshotError> {
    if !monitor.machine().mem().write_tracking_enabled() {
        return Err(SnapshotError::Unsupported {
            what: "delta snapshot requires write tracking",
        });
    }
    let image = capture(monitor, false)?;
    let dirty = monitor.machine_mut().mem_mut().take_dirty_pages();
    let mem = monitor.machine().mem();
    let mut extents: Vec<DeltaExtent> = Vec::new();
    for pfn in dirty {
        let page = mem.page(pfn).ok_or(SnapshotError::Invalid {
            what: "tracked page out of machine range",
        })?;
        match extents.last_mut() {
            // take_dirty_pages is ascending, so runs of consecutive
            // pages coalesce into one extent (one RLE stream each).
            Some(e) if e.start_pfn + e.pages() == pfn => e.data.extend_from_slice(page),
            _ => extents.push(DeltaExtent {
                start_pfn: pfn,
                data: page.to_vec(),
            }),
        }
    }
    Ok(encode_delta(&DeltaImage {
        parent_digest,
        image,
        extents,
    }))
}

/// Reconstructs a monitor from a base snapshot plus an ordered chain of
/// deltas.
///
/// Digest linkage is enforced link by link: delta `i` must record the
/// digest of the exact bytes of image `i-1` (the base for `i = 0`), so a
/// wrong base, an out-of-order chain, or a corrupted link fails before
/// any state is assembled. The result re-snapshots byte-equal to a full
/// snapshot of the source monitor at the final delta's capture point —
/// the bit-identity oracle the delta-chain fuzzer enforces on all three
/// execution tiers.
///
/// # Errors
///
/// Any [`SnapshotError`] from decoding the base or a delta;
/// `SnapshotError::Invalid` with `"delta chain digest mismatch"` when
/// linkage fails.
pub fn restore_chain<D: AsRef<[u8]>>(base: &[u8], deltas: &[D]) -> Result<Monitor, SnapshotError> {
    let mut image = crate::format::decode(base)?;
    let mut digest = fnv1a64(base);
    for delta_bytes in deltas {
        let delta_bytes = delta_bytes.as_ref();
        let delta = decode_delta(delta_bytes)?;
        if delta.parent_digest != digest {
            return Err(SnapshotError::Invalid {
                what: "delta chain digest mismatch",
            });
        }
        apply_delta(&mut image, delta)?;
        digest = fnv1a64(delta_bytes);
    }
    rebuild(image, MemSource::Image)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vax_vmm::{MonitorConfig, VmConfig};

    fn tracked_monitor() -> (Monitor, vax_vmm::VmId) {
        let mut m = Monitor::new(MonitorConfig::default());
        m.enable_dirty_tracking();
        let vm = m.create_vm("guest", VmConfig::default());
        (m, vm)
    }

    #[test]
    fn delta_requires_write_tracking() {
        let mut m = Monitor::new(MonitorConfig::default());
        m.create_vm("guest", VmConfig::default());
        let err = snapshot_delta(&mut m, 0).expect_err("tracking off");
        assert_eq!(err.what(), "delta snapshot requires write tracking");
    }

    #[test]
    fn empty_delta_round_trips_and_chains() {
        let (mut m, _) = tracked_monitor();
        let base = crate::snapshot_monitor(&m).expect("base");
        // Quiescent monitor: the delta may still carry pages create_vm
        // wrote before the base; drain those first for a truly empty one.
        let _ = snapshot_delta(&mut m, snapshot_digest(&base)).expect("drain");
        let d = snapshot_delta(&mut m, snapshot_digest(&base)).expect("delta");
        let decoded = decode_delta(&d).expect("decode");
        assert!(decoded.extents.is_empty());
        assert!(decoded.image.memory.is_empty());
        assert!(
            d.len() * 10 < base.len(),
            "empty delta ({}) must be far smaller than base ({})",
            d.len(),
            base.len()
        );
        let restored = restore_chain(&base, &[d]).expect("chain");
        assert!(restored.machine().mem().write_tracking_enabled());
    }

    #[test]
    fn delta_budget_is_enforced_before_allocation() {
        let (mut m, vm) = tracked_monitor();
        let base = crate::snapshot_monitor(&m).expect("base");
        m.vm_write_phys(vm, 0, &[0xabu8; 4096])
            .expect("dirty some pages");
        let d = snapshot_delta(&mut m, snapshot_digest(&base)).expect("delta");
        assert!(decode_delta_with_budget(&d, MAX_TOTAL_BYTES).is_ok());
        // A budget too small for the extents fails on the charge, not
        // after a huge allocation.
        let err = decode_delta_with_budget(&d, 512).expect_err("over budget");
        assert_eq!(err.what(), "image over decode size budget");
    }

    #[test]
    fn hostile_extent_encodings_are_rejected() {
        let (mut m, vm) = tracked_monitor();
        let base = crate::snapshot_monitor(&m).expect("base");
        // Clear create_vm's own setup writes so exactly two runs remain.
        let _ = m.machine_mut().mem_mut().take_dirty_pages();
        m.vm_write_phys(vm, 0, &[1u8; 512]).expect("w");
        m.vm_write_phys(vm, 2048, &[2u8; 512]).expect("w");
        let good = snapshot_delta(&mut m, snapshot_digest(&base)).expect("delta");
        let decoded = decode_delta(&good).expect("decode");
        assert_eq!(decoded.extents.len(), 2, "two disjoint runs");

        let reencode = |d: &DeltaImage| encode_delta(d);
        // Unsorted extents.
        let mut bad = decoded.clone();
        bad.extents.swap(0, 1);
        assert!(decode_delta(&reencode(&bad)).is_err());
        // Overlapping extents.
        let mut bad = decoded.clone();
        bad.extents[1].start_pfn = bad.extents[0].start_pfn;
        assert!(decode_delta(&reencode(&bad)).is_err());
        // Extent past the end of configured memory.
        let mut bad = decoded.clone();
        bad.extents[1].start_pfn = bad.image.config.mem_bytes / PAGE as u32;
        assert!(decode_delta(&reencode(&bad)).is_err());
        // Header and checksum damage.
        let mut t = good.clone();
        t[0] = b'X';
        assert!(matches!(decode_delta(&t), Err(SnapshotError::BadMagic)));
        let mut t = good.clone();
        t[8] = 99;
        assert!(matches!(
            decode_delta(&t),
            Err(SnapshotError::UnsupportedVersion { found: 99 })
        ));
        let flip = good.len() - 9;
        let mut t = good.clone();
        t[flip] ^= 1;
        assert!(matches!(
            decode_delta(&t),
            Err(SnapshotError::Checksum { .. })
        ));
        for cut in (0..good.len()).step_by(7) {
            assert!(decode_delta(&good[..cut]).is_err(), "cut at {cut}");
        }
    }
}
