#![warn(missing_docs)]
// Restore parses untrusted bytes (DESIGN.md §11 discipline): no path
// through this crate may panic on input. CI runs clippy with
// `-D warnings`, so outside of tests any unwrap/expect needs an
// `#[allow]` with a justification.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

//! Deterministic snapshot/restore, copy-on-write fork, and migration
//! support for the VAX VMM (DESIGN.md §13).
//!
//! A snapshot captures a quiescent [`Monitor`] — machine state including
//! the TLB exactly, full physical memory, every VM, the shadow-cache
//! bookkeeping, and the scheduler position — into a versioned,
//! checksummed byte image. Restoring and resuming produces cycles,
//! counters, halt reasons, and console output **bit-identical** to the
//! uninterrupted run (given the same [`Monitor::run`] call boundaries):
//! the snapshot joins the determinism contracts already enforced for
//! parallel-vs-serial fleets and decode-cache on/off.
//!
//! The format is hand-rolled little-endian with explicit bounds checks
//! (no serde, no unsafe): a `VAXSNAP1` magic, a version word, a length,
//! an FNV-1a-64 checksum, and zero-page run-length encoding for memory
//! and disks. Every malformed input surfaces as a [`SnapshotError`]
//! (convertible to `VmmError::Snapshot`), never a panic.
//!
//! # Example
//!
//! ```
//! use vax_vmm::{Monitor, MonitorConfig, VmConfig};
//!
//! let mut m = Monitor::new(MonitorConfig::default());
//! m.create_vm("guest", VmConfig::default());
//! let bytes = vax_snap::snapshot_monitor(&m).unwrap();
//! let restored = vax_snap::restore_monitor(&bytes).unwrap();
//! assert_eq!(restored.vm_count(), 1);
//! ```

pub mod delta;
pub mod error;
pub mod format;
pub mod image;
pub mod wire;

pub use delta::{
    decode_delta, encode_delta, restore_chain, snapshot_chain_base, snapshot_delta,
    snapshot_digest, DeltaExtent, DeltaImage, DELTA_MAGIC, DELTA_VERSION,
};
pub use error::SnapshotError;
pub use format::{decode, encode, MAGIC, VERSION};
pub use image::{capture, rebuild, MemSource, MonitorImage, VmImage};

use vax_vmm::Monitor;

/// Serializes a quiescent monitor into a snapshot image.
///
/// Pure function of monitor state: the same state always produces the
/// same bytes, so snapshot determinism is byte equality.
///
/// # Errors
///
/// [`SnapshotError::Unsupported`] if any VM uses `EmulatedMmio` (bus
/// device state cannot be extracted) or the monitor's state exceeds a
/// structural cap of the wire format — capture enforces every cap the
/// decoder does, so a snapshot this function returns is always
/// restorable; [`SnapshotError::Invalid`] if the machine memory is
/// unreadable (a VMM bug).
pub fn snapshot_monitor(monitor: &Monitor) -> Result<Vec<u8>, SnapshotError> {
    Ok(encode(&capture(monitor, true)?))
}

/// Reconstructs a monitor from a snapshot image.
///
/// The bytes are untrusted: framing, checksum, every discriminant, and
/// every cross-field invariant are validated before any state is
/// injected, so a malformed image is always an error and never a panic
/// or an over-size allocation — each variable-length field is capped
/// individually, and a global budget bounds the *total* bytes a decode
/// may materialize, so stacking many individually-legal fields cannot
/// amplify a small image into gigabytes. The restored monitor has observability
/// off (tracing is proven non-intrusive, so this cannot perturb the
/// resumed run).
///
/// # Errors
///
/// Any [`SnapshotError`] the validation pipeline detects.
pub fn restore_monitor(bytes: &[u8]) -> Result<Monitor, SnapshotError> {
    rebuild(decode(bytes)?, MemSource::Image)
}

/// Forks a quiescent monitor into `n` copy-on-write children.
///
/// Each child is a complete, independent monitor whose physical memory
/// shares every page with the parent until one side writes it — cost is
/// O(dirty pages), not O(memory). Parent and children all resume
/// bit-identically to an unforked run. `PhysMemory::shared_fraction`
/// on a child reports how much is still shared.
///
/// # Errors
///
/// Same conditions as [`snapshot_monitor`]; the parent is unchanged on
/// error.
pub fn fork_monitor(parent: &mut Monitor, n: usize) -> Result<Vec<Monitor>, SnapshotError> {
    let image = capture(parent, false)?;
    let mut children = Vec::with_capacity(n);
    for _ in 0..n {
        let mem = parent.machine_mut().fork_mem();
        children.push(rebuild(image.clone(), image::MemSource::Forked(mem))?);
    }
    Ok(children)
}
