//! Capture and reconstruction of a whole [`Monitor`].
//!
//! A snapshot does not serialize the monitor's internal structure — it
//! serializes the *inputs* that reproduce it. Restore is
//! reconstruction: [`Monitor::new`] with the captured config, then
//! [`Monitor::create_vm`] per VM in creation order. Because the frame
//! allocator is a deterministic bump allocator, this re-derives the
//! exact physical frame layout (VM memory blocks, shadow page tables)
//! of the snapshotted monitor; the serialized `mem_base_pfn` is checked
//! against the re-derived one so a layout mismatch is an error, not a
//! corrupted guest. With the skeleton in place, the captured physical
//! memory image is written over the machine's (carrying the shadow
//! table *contents* with it), the machine state — including the TLB,
//! exactly — is injected, and the per-VM state and shadow bookkeeping
//! are overwritten in place.
//!
//! The same skeleton-then-inject path serves copy-on-write forking:
//! instead of a serialized memory image, the child machine adopts a
//! [`PhysMemory`] forked from the parent, sharing every unmodified page.

use crate::error::SnapshotError;
use vax_cpu::MachineState;
use vax_mem::PhysMemory;
use vax_vmm::{IoStrategy, Monitor, MonitorConfig, SchedulerState, ShadowCacheState, Vm, VmConfig};

/// Everything a snapshot carries for one VM.
#[derive(Debug, Clone)]
pub struct VmImage {
    /// Creation parameters — replayed through [`Monitor::create_vm`].
    pub config: VmConfig,
    /// The VM's complete state, overwritten into the recreated slot.
    pub vm: Vm,
    /// Shadow process-table cache bookkeeping.
    pub shadow: ShadowCacheState,
}

/// A captured monitor: the plain-data form between a live [`Monitor`]
/// and the wire format.
#[derive(Debug, Clone)]
pub struct MonitorImage {
    /// Monitor-wide configuration, replayed through [`Monitor::new`].
    pub config: MonitorConfig,
    /// Scheduler position and VMM accounting.
    pub sched: SchedulerState,
    /// Complete machine state (registers, MMU, TLB, console, timer).
    pub machine: MachineState,
    /// Full physical memory image. Empty when the image feeds a
    /// copy-on-write fork, where memory crosses as a shared mapping
    /// instead of bytes.
    pub memory: Vec<u8>,
    /// Per-VM state, in creation order.
    pub vms: Vec<VmImage>,
}

/// Where a rebuilt monitor's physical memory comes from.
pub enum MemSource {
    /// The serialized image in [`MonitorImage::memory`].
    Image,
    /// A copy-on-write fork of a live machine's memory.
    Forked(PhysMemory),
}

/// Captures a monitor into its plain-data image.
///
/// The monitor must be quiescent — between [`Monitor::run`] calls — which
/// is the only state a caller outside the dispatch loop can observe
/// anyway.
///
/// # Errors
///
/// [`SnapshotError::Unsupported`] if any VM uses `EmulatedMmio` (its
/// device state lives behind the machine's bus and cannot be
/// extracted), or if the monitor's state exceeds a structural cap of
/// the wire format (an undrained console or `vmm_log` past its cap,
/// memory over the format's 1 GiB limit, aggregate state over the
/// global size budget). Capture enforces every cap [`crate::format::decode`]
/// checks, so an image this function produces is always restorable —
/// oversize state fails here, not at restore.
pub fn capture(monitor: &Monitor, with_memory: bool) -> Result<MonitorImage, SnapshotError> {
    let mut vms = Vec::new();
    for id in monitor.vm_ids() {
        let vm = monitor.vm(id);
        if vm.io_strategy == IoStrategy::EmulatedMmio || vm.real_io_base.is_some() {
            return Err(SnapshotError::Unsupported {
                what: "EmulatedMmio VM in snapshot",
            });
        }
        let shadow = monitor.shadow(id);
        vms.push(VmImage {
            config: VmConfig {
                mem_pages: vm.mem_pages,
                shadow: shadow.config(),
                io_strategy: vm.io_strategy,
                dirty_strategy: vm.dirty_strategy,
                vdisk_sectors: vm.vdisk.len() as u32,
            },
            vm: vm.clone(),
            shadow: shadow.export_cache_state(),
        });
    }
    let memory = if with_memory {
        let mem = monitor.machine().mem();
        mem.read_slice(0, mem.size())
            .map_err(|_| SnapshotError::Invalid {
                what: "machine memory unreadable",
            })?
            .into_owned()
    } else {
        Vec::new()
    };
    let image = MonitorImage {
        config: monitor.config().clone(),
        sched: monitor.scheduler_state(),
        machine: monitor.machine().export_state(),
        memory,
        vms,
    };
    crate::format::validate_caps(&image)?;
    Ok(image)
}

/// Rebuilds a live monitor from an image.
///
/// For images that came through [`crate::format::decode`], validation
/// has already run and this cannot panic; the residual checks here
/// (admission, frame-layout reproduction) guard images built in process
/// against monitors whose configuration cannot host them.
///
/// # Errors
///
/// [`SnapshotError::Invalid`] when the VMs do not fit in the configured
/// machine memory, when reconstruction derives a different frame layout
/// than the image records, or when the memory image does not match the
/// configured size.
pub fn rebuild(image: MonitorImage, mem: MemSource) -> Result<Monitor, SnapshotError> {
    let mut monitor = Monitor::new(image.config.clone());
    if let MemSource::Image = mem {
        if image.memory.len() != monitor.machine().mem().size() as usize {
            return Err(SnapshotError::Invalid {
                what: "memory image size disagrees with configuration",
            });
        }
    }
    // Recreate every VM through the normal creation path. This re-runs
    // the deterministic frame allocation sequence, so the skeleton's
    // layout matches the snapshotted monitor frame for frame — checked
    // below, because everything downstream (guest PTEs, shadow tables,
    // the TLB image) encodes physical addresses from that layout.
    let mut ids = Vec::new();
    for vm_image in &image.vms {
        if Monitor::admission_frames(&vm_image.config) > u64::from(monitor.frames_remaining()) {
            return Err(SnapshotError::Invalid {
                what: "VMs do not fit in machine memory",
            });
        }
        let id = monitor.create_vm(&vm_image.vm.name, vm_image.config.clone());
        if monitor.vm(id).mem_base_pfn != vm_image.vm.mem_base_pfn {
            return Err(SnapshotError::Invalid {
                what: "memory layout does not reproduce",
            });
        }
        ids.push(id);
    }
    // Memory before machine state: importing the state resets the
    // decode cache and re-arms code-page tracking against whatever
    // memory is in place at that point.
    match mem {
        MemSource::Image => {
            monitor
                .machine_mut()
                .mem_mut()
                .write_slice(0, &image.memory)
                .map_err(|_| SnapshotError::Invalid {
                    what: "memory image does not fit the machine",
                })?;
        }
        MemSource::Forked(forked) => {
            if forked.size() != monitor.machine().mem().size() {
                return Err(SnapshotError::Invalid {
                    what: "forked memory size disagrees with configuration",
                });
            }
            monitor.machine_mut().replace_mem(forked);
        }
    }
    monitor.machine_mut().import_state(image.machine.clone());
    for (id, vm_image) in ids.into_iter().zip(image.vms) {
        *monitor.vm_mut(id) = vm_image.vm;
        monitor.shadow_mut(id).import_cache_state(vm_image.shadow);
    }
    monitor.set_scheduler_state(image.sched);
    Ok(monitor)
}
