//! The snapshot failure taxonomy.
//!
//! Restore parses attacker-grade input: a snapshot file is just bytes,
//! and every malformed byte must surface as a [`SnapshotError`] — never
//! a panic, never an over-size allocation. The taxonomy mirrors the
//! fault-containment discipline of DESIGN.md §11: each error converts
//! into [`VmmError::Snapshot`] so callers that already route
//! [`VmmError`] (the CLI, the fleet) need no second error channel.

use vax_vmm::VmmError;

/// Everything that can be wrong with a snapshot image.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotError {
    /// The image ends before a field it promises.
    Truncated,
    /// The leading magic is not `VAXSNAP1`.
    BadMagic,
    /// A format version this build does not speak.
    UnsupportedVersion {
        /// The version the image claims.
        found: u32,
    },
    /// The payload checksum does not match its contents.
    Checksum {
        /// Checksum recorded in the image.
        expected: u64,
        /// Checksum of the payload as read.
        actual: u64,
    },
    /// Bytes remain after the last field the format defines.
    TrailingBytes,
    /// An enum discriminant outside its defined range.
    BadDiscriminant {
        /// Which field held the bad discriminant.
        what: &'static str,
    },
    /// A structurally valid field whose value contradicts the rest of
    /// the image (an index out of range, a size that cannot reproduce).
    Invalid {
        /// Which invariant the value violates.
        what: &'static str,
    },
    /// The monitor uses a feature snapshots do not carry.
    Unsupported {
        /// The feature in question.
        what: &'static str,
    },
}

impl SnapshotError {
    /// A static description, also used as the [`VmmError::Snapshot`]
    /// payload.
    pub fn what(self) -> &'static str {
        match self {
            SnapshotError::Truncated => "image truncated",
            SnapshotError::BadMagic => "bad magic",
            SnapshotError::UnsupportedVersion { .. } => "unsupported format version",
            SnapshotError::Checksum { .. } => "checksum mismatch",
            SnapshotError::TrailingBytes => "trailing bytes after image",
            SnapshotError::BadDiscriminant { what } | SnapshotError::Invalid { what } => what,
            SnapshotError::Unsupported { what } => what,
        }
    }
}

impl core::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SnapshotError::Truncated => write!(f, "snapshot image truncated"),
            SnapshotError::BadMagic => write!(f, "not a VAX snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion { found } => {
                write!(f, "unsupported snapshot version {found}")
            }
            SnapshotError::Checksum { expected, actual } => {
                write!(
                    f,
                    "snapshot checksum mismatch (recorded {expected:#018x}, computed {actual:#018x})"
                )
            }
            SnapshotError::TrailingBytes => write!(f, "trailing bytes after snapshot image"),
            SnapshotError::BadDiscriminant { what } => {
                write!(f, "snapshot field out of range: {what}")
            }
            SnapshotError::Invalid { what } => write!(f, "snapshot invalid: {what}"),
            SnapshotError::Unsupported { what } => write!(f, "snapshot unsupported: {what}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<SnapshotError> for VmmError {
    fn from(e: SnapshotError) -> VmmError {
        VmmError::Snapshot { what: e.what() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converts_into_the_vmm_taxonomy() {
        let e = SnapshotError::Invalid {
            what: "current VM index out of range",
        };
        assert_eq!(
            VmmError::from(e),
            VmmError::Snapshot {
                what: "current VM index out of range"
            }
        );
        assert!(!VmmError::from(e).is_guest_attributable());
    }

    #[test]
    fn display_names_the_problem() {
        assert!(SnapshotError::BadMagic.to_string().contains("magic"));
        assert!(SnapshotError::Checksum {
            expected: 1,
            actual: 2
        }
        .to_string()
        .contains("checksum"));
    }
}
