//! Snapshot/restore and copy-on-write fork contracts.
//!
//! The headline property: a monitor restored from a snapshot and
//! resumed produces **bit-identical** state — cycles, counters, TLB,
//! console bytes, halt reasons — to the monitor that was never
//! interrupted, given the same [`Monitor::run`] call boundaries. The
//! secondary property: a snapshot image is untrusted input, and no
//! corruption of it may panic the restorer.

use vax_os::{boot_in_monitor, build_image, OsConfig, Workload};
use vax_snap::{
    capture, fork_monitor, rebuild, restore_monitor, snapshot_monitor, MemSource, SnapshotError,
};
use vax_vmm::{Fleet, IoStrategy, Monitor, MonitorConfig, RunExit, VmConfig, VmmError};

/// A monitor running a real guest OS: timer interrupts, CHM syscalls,
/// context switches, shadow fills — enough machinery that accidental
/// state loss in the snapshot would show up as divergence.
fn os_monitor() -> Monitor {
    let image = build_image(&OsConfig {
        nproc: 3,
        iterations: 8,
        workload: Workload::Mixed,
        ..OsConfig::default()
    })
    .expect("OS image builds");
    let mut monitor = Monitor::new(MonitorConfig::default());
    boot_in_monitor(&mut monitor, &image, VmConfig::default());
    monitor
}

/// Deep comparison digest. `Vm` deliberately has no `PartialEq` (it is
/// not a value type), but its `Debug` form covers every field, which is
/// exactly what a bit-identity test wants.
fn digest(m: &Monitor) -> (String, String, Vec<String>) {
    (
        format!("{:?}", m.machine().export_state()),
        format!("{:?}", m.scheduler_state()),
        m.vm_ids()
            .map(|id| format!("{:?} {:?}", m.vm(id), m.shadow(id).export_cache_state()))
            .collect(),
    )
}

const PARTIAL: u64 = 300_000;
const FINISH: u64 = 50_000_000;

#[test]
fn restore_resumes_bit_identical_to_uninterrupted_run() {
    // Reference: never snapshotted, same call boundaries.
    let mut reference = os_monitor();
    reference.run(PARTIAL);
    let exit_ref = reference.run(FINISH);

    let mut original = os_monitor();
    original.run(PARTIAL);
    let bytes = snapshot_monitor(&original).expect("snapshot");
    let mut restored = restore_monitor(&bytes).expect("restore");
    let exit_restored = restored.run(FINISH);

    assert_eq!(exit_restored, exit_ref);
    assert_eq!(digest(&restored), digest(&reference));
    // The memory image agrees too: re-snapshotting both end states
    // yields the same bytes.
    assert_eq!(
        snapshot_monitor(&restored).expect("snapshot restored"),
        snapshot_monitor(&reference).expect("snapshot reference"),
    );
}

#[test]
fn snapshot_bytes_are_deterministic_and_round_trip() {
    let mut monitor = os_monitor();
    monitor.run(PARTIAL);
    let a = snapshot_monitor(&monitor).expect("first snapshot");
    let b = snapshot_monitor(&monitor).expect("second snapshot");
    assert_eq!(a, b, "same state, same bytes");
    // restore(snapshot(m)) captures back to the identical image.
    let restored = restore_monitor(&a).expect("restore");
    assert_eq!(snapshot_monitor(&restored).expect("re-snapshot"), a);
}

#[test]
fn every_corruption_is_an_error_never_a_panic() {
    let mut monitor = os_monitor();
    monitor.run(PARTIAL);
    let bytes = snapshot_monitor(&monitor).expect("snapshot");

    // Truncation at every prefix length (sampled for speed).
    for len in (0..bytes.len()).step_by(13) {
        assert!(
            restore_monitor(&bytes[..len]).is_err(),
            "truncation to {len} bytes must fail"
        );
    }
    // Single-byte corruption anywhere (sampled). Everything after the
    // header is covered by the checksum; header damage has its own
    // errors.
    for pos in (0..bytes.len()).step_by(37) {
        let mut bad = bytes.clone();
        bad[pos] ^= 0x5a;
        assert!(
            restore_monitor(&bad).is_err(),
            "bit flip at {pos} must fail"
        );
    }
    let mut flipped = bytes.clone();
    let last = flipped.len() - 9; // inside the payload, not the checksum
    flipped[last] ^= 1;
    assert!(matches!(
        restore_monitor(&flipped),
        Err(SnapshotError::Checksum { .. })
    ));
}

#[test]
fn header_tampering_is_diagnosed_precisely() {
    let monitor = os_monitor();
    let bytes = snapshot_monitor(&monitor).expect("snapshot");

    let mut wrong_magic = bytes.clone();
    wrong_magic[0] = b'X';
    assert!(matches!(
        restore_monitor(&wrong_magic),
        Err(SnapshotError::BadMagic)
    ));

    let mut wrong_version = bytes.clone();
    wrong_version[8] = 99;
    assert!(matches!(
        restore_monitor(&wrong_version),
        Err(SnapshotError::UnsupportedVersion { found: 99 })
    ));

    let mut padded = bytes.clone();
    padded.push(0);
    assert!(matches!(
        restore_monitor(&padded),
        Err(SnapshotError::TrailingBytes)
    ));
}

#[test]
fn fork_children_share_memory_and_resume_identically() {
    let mut reference = os_monitor();
    reference.run(PARTIAL);
    reference.run(FINISH);
    let want = digest(&reference);

    let mut parent = os_monitor();
    parent.run(PARTIAL);
    let mut children = fork_monitor(&mut parent, 3).expect("fork");
    assert_eq!(children.len(), 3);
    for child in &children {
        assert!(
            child.machine().mem().shared_fraction() > 0.99,
            "fresh fork shares everything"
        );
    }
    // Parent and every child independently resume to the reference
    // state; child writes go to private copies, so none of the four
    // disturbs the others.
    parent.run(FINISH);
    assert_eq!(digest(&parent), want);
    for child in &mut children {
        child.run(FINISH);
        assert_eq!(digest(child), want);
        assert!(
            child.machine().mem().shared_fraction() >= 0.8,
            "guest writes touch a small fraction of memory: {}",
            child.machine().mem().shared_fraction()
        );
    }
}

#[test]
fn midflight_migration_preserves_guest_output() {
    // Regression: a guest migrated *after* it has enabled memory
    // mapping depends on the target shadow set replaying its MTPR-to-SLR
    // history (the counting-guest migration test never turns mapping
    // on, so it cannot catch a stale S window).
    let mut reference = os_monitor();
    reference.run(PARTIAL);
    assert_eq!(reference.run(FINISH), RunExit::AllHalted);
    let rid = reference.vm_ids().next().expect("one VM");

    let mut fleet = Fleet::new();
    let mut source = os_monitor();
    source.run(PARTIAL);
    fleet.push(source);
    fleet.push(Monitor::new(MonitorConfig::default()));
    let vm = fleet.monitor(0).vm_ids().next().expect("one VM");
    let moved = fleet.migrate(vm, 0, 1).expect("migrate");
    assert_eq!(fleet.monitor_mut(1).run(FINISH), RunExit::AllHalted);

    let migrated = fleet.monitor(1).vm(moved);
    assert_eq!(migrated.console_out, reference.vm(rid).console_out);
    assert_eq!(migrated.regs, reference.vm(rid).regs);
    assert_eq!(migrated.halt_reason, reference.vm(rid).halt_reason);
}

#[test]
fn emulated_mmio_vms_are_rejected() {
    let mut monitor = Monitor::new(MonitorConfig::default());
    monitor.create_vm(
        "mmio",
        VmConfig {
            io_strategy: IoStrategy::EmulatedMmio,
            ..VmConfig::default()
        },
    );
    let err = snapshot_monitor(&monitor).expect_err("must be rejected");
    assert!(matches!(err, SnapshotError::Unsupported { .. }));
    assert!(matches!(VmmError::from(err), VmmError::Snapshot { .. }));
    assert!(fork_monitor(&mut monitor, 2).is_err());
}

#[test]
fn oversize_state_fails_at_snapshot_not_at_restore() {
    // A monitor whose legitimate running state exceeds a wire-format
    // cap must be refused at capture — the alternative is an image that
    // encodes fine but can never be restored.
    let mut monitor = Monitor::new(MonitorConfig::default());
    let vm = monitor.create_vm("chatty", VmConfig::default());

    monitor.vm_mut(vm).vmm_log.push("x".repeat(4097));
    assert!(matches!(
        snapshot_monitor(&monitor),
        Err(SnapshotError::Unsupported {
            what: "VMM log line over snapshot cap"
        })
    ));
    monitor.vm_mut(vm).vmm_log.clear();

    monitor.vm_mut(vm).vmm_log = vec![String::from("line"); 65_537];
    assert!(matches!(
        snapshot_monitor(&monitor),
        Err(SnapshotError::Unsupported {
            what: "VMM log line count over snapshot cap"
        })
    ));
    monitor.vm_mut(vm).vmm_log.clear();

    // Back under the caps, the same monitor snapshots and restores.
    let bytes = snapshot_monitor(&monitor).expect("legal again");
    assert!(restore_monitor(&bytes).is_ok());
}

#[test]
fn oversize_vm_name_fails_at_snapshot() {
    let mut monitor = Monitor::new(MonitorConfig::default());
    monitor.create_vm(&"n".repeat(257), VmConfig::default());
    assert!(matches!(
        snapshot_monitor(&monitor),
        Err(SnapshotError::Unsupported {
            what: "VM name over snapshot cap"
        })
    ));
}

#[test]
fn rebuild_applies_admission_control() {
    let monitor = os_monitor();
    let mut image = capture(&monitor, true).expect("capture");
    // A VM bigger than the whole machine cannot be admitted; the
    // restorer must refuse rather than let the frame allocator panic.
    image.vms[0].config.mem_pages = monitor.machine().mem().pages() + 1;
    image.vms[0].vm.mem_pages = monitor.machine().mem().pages() + 1;
    match rebuild(image, MemSource::Image) {
        Err(e) => assert_eq!(e.what(), "VMs do not fit in machine memory"),
        Ok(_) => panic!("oversize VM must be refused"),
    }
}
