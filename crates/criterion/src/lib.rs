//! A small, dependency-free stand-in for the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the subset of the criterion API its benches use:
//! `Criterion`, `benchmark_group` (with `sample_size`, `throughput`,
//! `bench_function`, `bench_with_input`, `finish`), `Bencher::iter`,
//! `Throughput`, `BenchmarkId`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros. Measurement is a simple adaptive wall-clock
//! loop: warm up, grow the iteration count until the sample takes at
//! least ~50 ms, then report mean time per iteration (and throughput
//! when configured). No statistics, plots, or baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of the standard optimization barrier.
pub use std::hint::black_box;

/// Units for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Logical elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier (`function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter.
    pub fn new(function: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

/// Times one benchmark body.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Calls `f` repeatedly and records mean wall-clock time.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        black_box(f()); // warm-up, untimed
        let mut iters = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(50) || iters >= 1 << 20 {
                self.iters = iters;
                self.elapsed = elapsed;
                return;
            }
            iters *= 2;
        }
    }
}

fn fmt_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn run_one(
    group: Option<&str>,
    id: &str,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut b = Bencher {
        iters: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter_ns = if b.iters == 0 {
        0.0
    } else {
        b.elapsed.as_nanos() as f64 / b.iters as f64
    };
    let name = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!(
            "  thrpt: {:.0} elem/s",
            n as f64 / (per_iter_ns / 1_000_000_000.0)
        ),
        Throughput::Bytes(n) => format!(
            "  thrpt: {:.0} B/s",
            n as f64 / (per_iter_ns / 1_000_000_000.0)
        ),
    });
    println!(
        "{name:<40} time: {}{}",
        fmt_time(per_iter_ns),
        rate.unwrap_or_default()
    );
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        run_one(None, &id.into().id, None, &mut f);
        self
    }
}

/// A group of benchmarks sharing a name and throughput setting.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; this harness sizes samples by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        run_one(Some(&self.name), &id.into().id, self.throughput, &mut f);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(Some(&self.name), &id.id, self.throughput, &mut |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main()` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("stub");
        g.sample_size(10).throughput(Throughput::Elements(4));
        let mut total = 0u64;
        g.bench_function("sum", |b| {
            b.iter(|| {
                total = total.wrapping_add(black_box(1));
                total
            })
        });
        g.bench_with_input(BenchmarkId::from_parameter(7), &7u32, |b, &x| {
            b.iter(|| black_box(x) * 2)
        });
        g.finish();
        c.bench_function("plain", |b| b.iter(|| black_box(3) + 4));
        assert!(total > 0);
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("f", 32).id, "f/32");
        assert_eq!(BenchmarkId::from_parameter(8).id, "8");
    }
}
