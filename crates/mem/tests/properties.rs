//! Property-based tests on the memory subsystem.

use proptest::prelude::*;
use vax_arch::{AccessMode, CostModel, Protection, Pte, VirtAddr};
use vax_mem::{MemFault, Mmu, PhysMemory};

const SPT_PA: u32 = 0x1000;

/// Builds a machine-less MMU over `n` identity-mapped S pages with the
/// given protections.
fn setup(prots: &[(Protection, bool, bool)]) -> (PhysMemory, Mmu) {
    let mut mem = PhysMemory::new(512 * 1024);
    let mut mmu = Mmu::new();
    for (i, (p, v, m)) in prots.iter().enumerate() {
        // Map S page i to PFN 64+i so data never collides with the SPT.
        let pte = Pte::build(64 + i as u32, *p, *v, *m);
        mem.write_u32(SPT_PA + 4 * i as u32, pte.raw()).unwrap();
    }
    mmu.set_sbr(SPT_PA);
    mmu.set_slr(prots.len() as u32);
    mmu.set_mapen(true);
    (mem, mmu)
}

fn arb_mode() -> impl Strategy<Value = AccessMode> {
    (0u32..4).prop_map(AccessMode::from_bits)
}

fn arb_prot() -> impl Strategy<Value = Protection> {
    (0usize..Protection::ALL.len()).prop_map(|i| Protection::ALL[i])
}

proptest! {
    /// The walker's outcome agrees with the protection table exactly:
    /// AV iff protection denies, TNV iff protection allows but invalid.
    #[test]
    fn translate_agrees_with_protection_table(
        p in arb_prot(),
        valid in any::<bool>(),
        mode in arb_mode(),
        write in any::<bool>(),
        offset in 0u32..512,
    ) {
        let (mut mem, mut mmu) = setup(&[(p, valid, true)]);
        let costs = CostModel::default();
        let va = VirtAddr::new(0x8000_0000 + offset);
        let r = mmu.translate(&mut mem, va, mode, write, &costs);
        let allowed = p.allows(mode, write);
        match (allowed, valid) {
            (false, _) => prop_assert!(
                matches!(r, Err(MemFault::AccessViolation { length: false, .. })),
                "{p} {mode} w={write}: {r:?}"
            ),
            (true, false) => prop_assert!(
                matches!(r, Err(MemFault::TranslationNotValid { .. })),
                "{p} {mode}: {r:?}"
            ),
            (true, true) => {
                let t = r.unwrap();
                prop_assert_eq!(t.pa, (64 << 9) + offset);
            }
        }
    }

    /// A TLB hit returns the same translation as a cold walk.
    #[test]
    fn tlb_is_transparent(
        pages in proptest::collection::vec((arb_prot(), any::<bool>()), 1..16),
        accesses in proptest::collection::vec((0usize..16, 0u32..512, any::<bool>()), 1..40),
        mode in arb_mode(),
    ) {
        let prots: Vec<(Protection, bool, bool)> =
            pages.iter().map(|(p, v)| (*p, *v, true)).collect();
        let (mut mem, mut mmu) = setup(&prots);
        let (mut mem2, mut mmu2) = setup(&prots);
        let costs = CostModel::default();
        for (page, off, write) in accesses {
            let page = page % prots.len();
            let va = VirtAddr::new(0x8000_0000 + (page as u32) * 512 + off);
            let warm = mmu.translate(&mut mem, va, mode, write, &costs);
            // The cold MMU flushes before every access.
            mmu2.tlb_mut().invalidate_all();
            let cold = mmu2.translate(&mut mem2, va, mode, write, &costs);
            match (warm, cold) {
                (Ok(a), Ok(b)) => prop_assert_eq!(a.pa, b.pa),
                (Err(a), Err(b)) => prop_assert_eq!(a, b),
                (a, b) => prop_assert!(false, "warm {a:?} vs cold {b:?}"),
            }
        }
    }

    /// Virtual read-back: what you write is what you read, including
    /// page-crossing unaligned accesses.
    #[test]
    fn virt_write_read_round_trip(
        offset in 0u32..1020,
        value in any::<u32>(),
        len in prop_oneof![Just(1u32), Just(2), Just(4)],
    ) {
        let (mut mem, mut mmu) = setup(&[
            (Protection::Uw, true, true),
            (Protection::Uw, true, true),
        ]);
        let costs = CostModel::default();
        let va = VirtAddr::new(0x8000_0000 + offset);
        mmu.write_virt(&mut mem, va, value, len, AccessMode::User, &costs)
            .unwrap();
        let (got, _) = mmu
            .read_virt(&mut mem, va, len, AccessMode::User, &costs)
            .unwrap();
        let mask = match len {
            1 => 0xff,
            2 => 0xffff,
            _ => u32::MAX,
        };
        prop_assert_eq!(got, value & mask);
    }

    /// PROBE never mutates state: no modify bits set, and a following
    /// translate behaves as if the probe never happened.
    #[test]
    fn probe_is_pure(
        p in arb_prot(),
        valid in any::<bool>(),
        mode in arb_mode(),
        write in any::<bool>(),
    ) {
        let (mem_orig, _) = setup(&[(p, valid, false)]);
        let (mem, mut mmu) = setup(&[(p, valid, false)]);
        let costs = CostModel::default();
        let va = VirtAddr::new(0x8000_0000);
        let _ = mmu.probe(&mem, va, mode, write, &costs);
        prop_assert_eq!(
            mem.read_u32(SPT_PA).unwrap(),
            mem_orig.read_u32(SPT_PA).unwrap(),
            "probe must not touch the PTE"
        );
    }

    /// Physical memory round trip with mixed widths.
    #[test]
    fn phys_round_trip(pa in 0u32..4000, v in any::<u32>()) {
        let mut mem = PhysMemory::new(8192);
        mem.write_u32(pa, v).unwrap();
        prop_assert_eq!(mem.read_u32(pa).unwrap(), v);
        prop_assert_eq!(mem.read_u16(pa).unwrap(), v as u16);
        prop_assert_eq!(mem.read_u8(pa).unwrap(), v as u8);
    }
}
