//! Memory-management fault descriptors.

use vax_arch::{Exception, VirtAddr};

/// A fault raised by the memory subsystem.
///
/// Converts losslessly into the architectural [`Exception`] the CPU
/// delivers (see [`MemFault::to_exception`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemFault {
    /// Protection denied the access, or the address failed the page-table
    /// length check (`length`), possibly while referencing a process PTE
    /// (`pte_ref`).
    AccessViolation {
        /// Faulting virtual address.
        va: VirtAddr,
        /// The access was a write.
        write: bool,
        /// True for a length (page-table bounds) violation.
        length: bool,
        /// True if the fault occurred referencing a process PTE.
        pte_ref: bool,
    },
    /// The PTE's valid bit was clear (page fault).
    TranslationNotValid {
        /// Faulting virtual address.
        va: VirtAddr,
        /// The access was a write.
        write: bool,
        /// True if the fault occurred referencing a process PTE.
        pte_ref: bool,
    },
    /// Write to a writable page with `PTE<M>` clear, on a machine running
    /// with modify faults enabled (the paper's §4.4.2 extension).
    ModifyFault {
        /// Faulting virtual address.
        va: VirtAddr,
    },
    /// Reference to physical memory that does not exist (machine check).
    NonExistent {
        /// The offending physical address.
        pa: u32,
    },
}

impl MemFault {
    /// The architectural exception this fault raises.
    pub fn to_exception(self) -> Exception {
        match self {
            MemFault::AccessViolation {
                va,
                write,
                length,
                pte_ref,
            } => Exception::AccessViolation {
                va,
                write,
                length,
                pte_ref,
            },
            MemFault::TranslationNotValid { va, write, pte_ref } => {
                Exception::TranslationNotValid { va, write, pte_ref }
            }
            MemFault::ModifyFault { va } => Exception::ModifyFault { va },
            MemFault::NonExistent { pa } => Exception::MachineCheck { code: pa },
        }
    }

    /// The faulting virtual address, when the fault has one.
    pub fn va(self) -> Option<VirtAddr> {
        match self {
            MemFault::AccessViolation { va, .. }
            | MemFault::TranslationNotValid { va, .. }
            | MemFault::ModifyFault { va } => Some(va),
            MemFault::NonExistent { .. } => None,
        }
    }
}

impl core::fmt::Display for MemFault {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            MemFault::AccessViolation {
                va, write, length, ..
            } => write!(
                f,
                "access violation at {va} ({}{})",
                if *write { "write" } else { "read" },
                if *length { ", length" } else { "" }
            ),
            MemFault::TranslationNotValid { va, write, .. } => write!(
                f,
                "translation not valid at {va} ({})",
                if *write { "write" } else { "read" }
            ),
            MemFault::ModifyFault { va } => write!(f, "modify fault at {va}"),
            MemFault::NonExistent { pa } => write!(f, "nonexistent memory at {pa:#010x}"),
        }
    }
}

impl std::error::Error for MemFault {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversion_to_exception() {
        let f = MemFault::TranslationNotValid {
            va: VirtAddr::new(0x1200),
            write: true,
            pte_ref: false,
        };
        assert_eq!(
            f.to_exception(),
            Exception::TranslationNotValid {
                va: VirtAddr::new(0x1200),
                write: true,
                pte_ref: false
            }
        );
        assert_eq!(f.va(), Some(VirtAddr::new(0x1200)));

        let nx = MemFault::NonExistent { pa: 0xffff };
        assert_eq!(nx.to_exception(), Exception::MachineCheck { code: 0xffff });
        assert_eq!(nx.va(), None);
    }

    #[test]
    fn display_is_nonempty() {
        for f in [
            MemFault::AccessViolation {
                va: VirtAddr::new(0),
                write: false,
                length: true,
                pte_ref: false,
            },
            MemFault::ModifyFault {
                va: VirtAddr::new(0),
            },
            MemFault::NonExistent { pa: 0 },
        ] {
            assert!(!f.to_string().is_empty());
        }
    }
}
