//! The memory-management unit: page-table walk, TLB, and the
//! protection/valid/modify check sequence.

use crate::fault::MemFault;
use crate::phys::PhysMemory;
use crate::tlb::{is_process_region, Tlb, TlbEntry, TlbState};
use vax_arch::va::{Region, VirtAddr, PAGE_BYTES, PAGE_SHIFT};
use vax_arch::{AccessMode, CostModel, Pte};

/// A successful translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Translation {
    /// The physical byte address.
    pub pa: u32,
    /// Extra cycles charged (TLB miss, modify-bit write-back).
    pub cycles: u64,
}

/// The result of a PROBE-style accessibility check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeOutcome {
    /// Protection permits the access from the checked mode.
    pub accessible: bool,
    /// The PTE's valid bit. On the modified VAX, a PROBE in VM mode with
    /// `pte_valid == false` must trap to the VMM (paper §4.3.2) because
    /// an invalid shadow PTE's protection field is not meaningful.
    pub pte_valid: bool,
    /// Cached `PTE<M>` state (used by PROBEVM's three-part check).
    pub pte_modified: bool,
    /// Extra cycles charged.
    pub cycles: u64,
}

/// Event counters kept by the MMU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemCounters {
    /// Completed page-table walks.
    pub walks: u64,
    /// Modify bits set by hardware (base-architecture mode only).
    pub m_bit_sets: u64,
    /// Modify faults raised (modified-architecture mode only).
    pub modify_faults: u64,
}

/// A plain-data image of an [`Mmu`] for snapshot/restore.
///
/// Imported through [`Mmu::import_state`] rather than the individual
/// setters because the setters invalidate TLB entries as the architecture
/// requires — a restore must instead reinstate the captured TLB exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MmuState {
    /// Translation enable.
    pub mapen: bool,
    /// P0 page-table base (S-space VA).
    pub p0br: u32,
    /// P0 page-table length (PTE count).
    pub p0lr: u32,
    /// P1 page-table base (S-space VA).
    pub p1br: u32,
    /// P1 page-table length register.
    pub p1lr: u32,
    /// System page-table base (physical).
    pub sbr: u32,
    /// System page-table length (PTE count).
    pub slr: u32,
    /// Modify-fault (modified VAX) vs hardware modify-bit mode.
    pub modify_fault_enabled: bool,
    /// MMU event counters.
    pub counters: MemCounters,
    /// The complete TLB image.
    pub tlb: TlbState,
}

/// Where a region's PTE for a given page lives.
enum PteLocation {
    /// System PTEs live at a physical address.
    Phys(u32),
    /// Process (P0/P1) PTEs live at a system-space virtual address.
    SysVirt(VirtAddr),
}

/// The memory-management unit.
///
/// Owns the per-region base/length registers, the TLB, and the switch
/// between hardware modify-bit maintenance (standard VAX) and the modify
/// fault (modified VAX, paper §4.4.2).
///
/// See the [crate-level example](crate) for basic usage.
#[derive(Debug, Clone)]
pub struct Mmu {
    mapen: bool,
    p0br: u32,
    p0lr: u32,
    p1br: u32,
    p1lr: u32,
    sbr: u32,
    slr: u32,
    tlb: Tlb,
    modify_fault_enabled: bool,
    counters: MemCounters,
}

impl Default for Mmu {
    fn default() -> Mmu {
        Mmu::new()
    }
}

impl Mmu {
    /// Creates an MMU with translation disabled and an empty TLB.
    pub fn new() -> Mmu {
        Mmu {
            mapen: false,
            p0br: 0,
            p0lr: 0,
            p1br: 0,
            p1lr: 0,
            sbr: 0,
            slr: 0,
            tlb: Tlb::default(),
            modify_fault_enabled: false,
            counters: MemCounters::default(),
        }
    }

    /// Enables or disables address translation (the MAPEN register).
    pub fn set_mapen(&mut self, on: bool) {
        self.mapen = on;
        self.tlb.invalidate_all();
    }

    /// True if translation is enabled.
    #[inline]
    pub fn mapen(&self) -> bool {
        self.mapen
    }

    /// Selects modify-fault behavior (modified VAX) instead of hardware
    /// modify-bit setting (standard VAX).
    pub fn set_modify_fault_enabled(&mut self, on: bool) {
        self.modify_fault_enabled = on;
    }

    /// True if modify faults are enabled.
    pub fn modify_fault_enabled(&self) -> bool {
        self.modify_fault_enabled
    }

    /// Sets the system page-table base (physical address).
    pub fn set_sbr(&mut self, pa: u32) {
        self.sbr = pa;
        self.tlb.invalidate_all();
    }

    /// Sets the system page-table length (PTE count).
    pub fn set_slr(&mut self, n: u32) {
        self.slr = n;
        self.tlb.invalidate_all();
    }

    /// Sets the P0 page-table base (S-space virtual address).
    pub fn set_p0br(&mut self, va: u32) {
        self.p0br = va;
        self.tlb.invalidate_process();
    }

    /// Sets the P0 page-table length (PTE count).
    pub fn set_p0lr(&mut self, n: u32) {
        self.p0lr = n;
        self.tlb.invalidate_process();
    }

    /// Sets the P1 page-table base (S-space virtual address).
    pub fn set_p1br(&mut self, va: u32) {
        self.p1br = va;
        self.tlb.invalidate_process();
    }

    /// Sets the P1 page-table length register.
    ///
    /// Per the architecture, P1 grows downward: pages with VPN **at or
    /// above** `P1LR` exist.
    pub fn set_p1lr(&mut self, n: u32) {
        self.p1lr = n;
        self.tlb.invalidate_process();
    }

    /// Reads back (sbr, slr, p0br, p0lr, p1br, p1lr).
    pub fn bases(&self) -> (u32, u32, u32, u32, u32, u32) {
        (
            self.sbr, self.slr, self.p0br, self.p0lr, self.p1br, self.p1lr,
        )
    }

    /// The TLB, for invalidation (TBIA/TBIS) and statistics.
    pub fn tlb_mut(&mut self) -> &mut Tlb {
        &mut self.tlb
    }

    /// The TLB, read-only.
    pub fn tlb(&self) -> &Tlb {
        &self.tlb
    }

    /// MMU event counters.
    pub fn counters(&self) -> MemCounters {
        self.counters
    }

    /// Captures the complete MMU state (registers, counters, TLB).
    pub fn export_state(&self) -> MmuState {
        MmuState {
            mapen: self.mapen,
            p0br: self.p0br,
            p0lr: self.p0lr,
            p1br: self.p1br,
            p1lr: self.p1lr,
            sbr: self.sbr,
            slr: self.slr,
            modify_fault_enabled: self.modify_fault_enabled,
            counters: self.counters,
            tlb: self.tlb.export_state(),
        }
    }

    /// Replaces the complete MMU state, reinstating the captured TLB
    /// verbatim (no invalidations).
    ///
    /// # Panics
    ///
    /// Panics if the TLB image's slot count is not a power of two; see
    /// [`Tlb::import_state`].
    pub fn import_state(&mut self, state: MmuState) {
        self.mapen = state.mapen;
        self.p0br = state.p0br;
        self.p0lr = state.p0lr;
        self.p1br = state.p1br;
        self.p1lr = state.p1lr;
        self.sbr = state.sbr;
        self.slr = state.slr;
        self.modify_fault_enabled = state.modify_fault_enabled;
        self.counters = state.counters;
        self.tlb.import_state(state.tlb);
    }

    fn pte_location(&self, va: VirtAddr, write: bool) -> Result<PteLocation, MemFault> {
        let vpn = va.vpn();
        match va.region() {
            Region::P0 => {
                if vpn >= self.p0lr {
                    return Err(MemFault::AccessViolation {
                        va,
                        write,
                        length: true,
                        pte_ref: false,
                    });
                }
                Ok(PteLocation::SysVirt(VirtAddr::new(
                    self.p0br.wrapping_add(4 * vpn),
                )))
            }
            Region::P1 => {
                if vpn < self.p1lr {
                    return Err(MemFault::AccessViolation {
                        va,
                        write,
                        length: true,
                        pte_ref: false,
                    });
                }
                Ok(PteLocation::SysVirt(VirtAddr::new(
                    self.p1br.wrapping_add(4 * vpn),
                )))
            }
            Region::S => {
                if vpn >= self.slr {
                    return Err(MemFault::AccessViolation {
                        va,
                        write,
                        length: true,
                        pte_ref: false,
                    });
                }
                Ok(PteLocation::Phys(self.sbr.wrapping_add(4 * vpn)))
            }
            Region::Reserved => Err(MemFault::AccessViolation {
                va,
                write,
                length: true,
                pte_ref: false,
            }),
        }
    }

    /// Resolves the physical address of the PTE mapping `va`, walking the
    /// system table for process PTEs. Hardware PTE fetches bypass the
    /// protection check but honor the valid bit and length registers.
    fn resolve_pte_pa(
        &mut self,
        mem: &PhysMemory,
        va: VirtAddr,
        write: bool,
        costs: &CostModel,
        cycles: &mut u64,
    ) -> Result<u32, MemFault> {
        match self.pte_location(va, write)? {
            PteLocation::Phys(pa) => Ok(pa),
            PteLocation::SysVirt(pte_va) => {
                // A process-PTE reference outside S space is a malformed
                // base register (software-controllable state, so this
                // must fault, not panic); report it as a length
                // violation.
                if pte_va.region() != Region::S {
                    return Err(MemFault::AccessViolation {
                        va,
                        write,
                        length: true,
                        pte_ref: true,
                    });
                }
                // The PTE page itself may be cached in the TLB.
                if let Some(e) = self.tlb.lookup(pte_va) {
                    return Ok((e.pfn << PAGE_SHIFT) | pte_va.byte_offset());
                }
                *cycles += costs.tlb_miss_system;
                let svpn = pte_va.vpn();
                if svpn >= self.slr {
                    return Err(MemFault::AccessViolation {
                        va,
                        write,
                        length: true,
                        pte_ref: true,
                    });
                }
                let spte_pa = self.sbr.wrapping_add(4 * svpn);
                let spte = Pte::from_raw(mem.read_u32(spte_pa)?);
                if !spte.valid() {
                    return Err(MemFault::TranslationNotValid {
                        va,
                        write,
                        pte_ref: true,
                    });
                }
                self.tlb.insert(TlbEntry {
                    tag: pte_va.page_base().raw(),
                    pfn: spte.pfn(),
                    prot: spte.protection(),
                    modified: spte.modified(),
                    pte_pa: spte_pa,
                    process: false,
                });
                Ok((spte.pfn() << PAGE_SHIFT) | pte_va.byte_offset())
            }
        }
    }

    /// Translates `va` for an access of the given kind from `mode`.
    ///
    /// Follows the architectural check order: length, **protection even if
    /// the valid bit is clear**, validity, then modify-bit maintenance.
    ///
    /// # Errors
    ///
    /// Any [`MemFault`]; see the variant docs.
    pub fn translate(
        &mut self,
        mem: &mut PhysMemory,
        va: VirtAddr,
        mode: AccessMode,
        write: bool,
        costs: &CostModel,
    ) -> Result<Translation, MemFault> {
        if !self.mapen {
            return Ok(Translation {
                pa: va.raw(),
                cycles: 0,
            });
        }
        let mut cycles = 0u64;

        if let Some(entry) = self.tlb.lookup(va) {
            if !entry.prot.allows(mode, write) {
                return Err(MemFault::AccessViolation {
                    va,
                    write,
                    length: false,
                    pte_ref: false,
                });
            }
            if write && !entry.modified {
                // Refresh from the PTE: software may have set M after a
                // modify fault without issuing a TB invalidate.
                let pte = Pte::from_raw(mem.read_u32(entry.pte_pa)?);
                if pte.modified() {
                    self.tlb.set_modified(va);
                } else if self.modify_fault_enabled {
                    self.counters.modify_faults += 1;
                    return Err(MemFault::ModifyFault { va });
                } else {
                    mem.write_u32(entry.pte_pa, pte.with_modified(true).raw())?;
                    self.tlb.set_modified(va);
                    self.counters.m_bit_sets += 1;
                    cycles += costs.set_modify_bit;
                }
            }
            return Ok(Translation {
                pa: (entry.pfn << PAGE_SHIFT) | va.byte_offset(),
                cycles,
            });
        }

        // TLB miss: walk.
        cycles += if is_process_region(va.region()) {
            costs.tlb_miss_process
        } else {
            costs.tlb_miss_system
        };
        self.counters.walks += 1;

        let pte_pa = self.resolve_pte_pa(mem, va, write, costs, &mut cycles)?;
        let pte = Pte::from_raw(mem.read_u32(pte_pa)?);

        // Protection first, even if V is clear (paper §3.2.1).
        if !pte.protection().allows(mode, write) {
            return Err(MemFault::AccessViolation {
                va,
                write,
                length: false,
                pte_ref: false,
            });
        }
        if !pte.valid() {
            return Err(MemFault::TranslationNotValid {
                va,
                write,
                pte_ref: false,
            });
        }
        let mut modified = pte.modified();
        if write && !modified {
            if self.modify_fault_enabled {
                self.counters.modify_faults += 1;
                return Err(MemFault::ModifyFault { va });
            }
            mem.write_u32(pte_pa, pte.with_modified(true).raw())?;
            self.counters.m_bit_sets += 1;
            cycles += costs.set_modify_bit;
            modified = true;
        }

        self.tlb.insert(TlbEntry {
            tag: va.page_base().raw(),
            pfn: pte.pfn(),
            prot: pte.protection(),
            modified,
            pte_pa,
            process: is_process_region(va.region()),
        });

        Ok(Translation {
            pa: (pte.pfn() << PAGE_SHIFT) | va.byte_offset(),
            cycles,
        })
    }

    /// PROBE-style accessibility check: reads the protection (and valid
    /// and modify bits) without performing the access and without
    /// modify-bit side effects.
    ///
    /// A length violation makes the page inaccessible rather than
    /// faulting. A fault is returned only for problems referencing a
    /// *process PTE* (as on the real machine) or nonexistent memory.
    ///
    /// # Errors
    ///
    /// [`MemFault::TranslationNotValid`] / [`MemFault::AccessViolation`]
    /// with `pte_ref` set, or [`MemFault::NonExistent`].
    pub fn probe(
        &mut self,
        mem: &PhysMemory,
        va: VirtAddr,
        mode: AccessMode,
        write: bool,
        costs: &CostModel,
    ) -> Result<ProbeOutcome, MemFault> {
        if !self.mapen {
            return Ok(ProbeOutcome {
                accessible: true,
                pte_valid: true,
                pte_modified: true,
                cycles: 0,
            });
        }
        let mut cycles = 0u64;
        if let Some(e) = self.tlb.peek(va) {
            return Ok(ProbeOutcome {
                accessible: e.prot.allows(mode, write),
                pte_valid: true,
                pte_modified: e.modified,
                cycles,
            });
        }
        if self.pte_location(va, write).is_err() {
            // Length violation: not accessible, no fault.
            return Ok(ProbeOutcome {
                accessible: false,
                pte_valid: false,
                pte_modified: false,
                cycles,
            });
        }
        let pte_pa = self.resolve_pte_pa(mem, va, write, costs, &mut cycles)?;
        let pte = Pte::from_raw(mem.read_u32(pte_pa)?);
        Ok(ProbeOutcome {
            accessible: pte.protection().allows(mode, write),
            pte_valid: pte.valid(),
            pte_modified: pte.modified(),
            cycles,
        })
    }

    /// Reads `len ∈ {1,2,4}` bytes at a virtual address. A reference
    /// crossing a page boundary (the VAX permits unaligned accesses)
    /// touches at most two pages; each is translated once and the
    /// access is split at the boundary.
    ///
    /// # Errors
    ///
    /// Any [`MemFault`] raised during translation or the physical access.
    pub fn read_virt(
        &mut self,
        mem: &mut PhysMemory,
        va: VirtAddr,
        len: u32,
        mode: AccessMode,
        costs: &CostModel,
    ) -> Result<(u32, u64), MemFault> {
        debug_assert!(matches!(len, 1 | 2 | 4));
        if va.byte_offset() + len <= PAGE_BYTES {
            let t = self.translate(mem, va, mode, false, costs)?;
            let v = match len {
                1 => mem.read_u8(t.pa)? as u32,
                2 => mem.read_u16(t.pa)? as u32,
                _ => mem.read_u32(t.pa)?,
            };
            Ok((v, t.cycles))
        } else {
            let split = PAGE_BYTES - va.byte_offset();
            let t0 = self.translate(mem, va, mode, false, costs)?;
            let t1 = self.translate(mem, va.wrapping_add(split), mode, false, costs)?;
            let mut v = 0u32;
            for i in 0..len {
                let pa = if i < split {
                    t0.pa + i
                } else {
                    t1.pa + (i - split)
                };
                v |= (mem.read_u8(pa)? as u32) << (8 * i);
            }
            Ok((v, t0.cycles + t1.cycles))
        }
    }

    /// Writes `len ∈ {1,2,4}` bytes at a virtual address; see
    /// [`Mmu::read_virt`].
    ///
    /// # Errors
    ///
    /// Any [`MemFault`] raised during translation or the physical access.
    pub fn write_virt(
        &mut self,
        mem: &mut PhysMemory,
        va: VirtAddr,
        value: u32,
        len: u32,
        mode: AccessMode,
        costs: &CostModel,
    ) -> Result<u64, MemFault> {
        debug_assert!(matches!(len, 1 | 2 | 4));
        if va.byte_offset() + len <= PAGE_BYTES {
            let t = self.translate(mem, va, mode, true, costs)?;
            match len {
                1 => mem.write_u8(t.pa, value as u8)?,
                2 => mem.write_u16(t.pa, value as u16)?,
                _ => mem.write_u32(t.pa, value)?,
            }
            Ok(t.cycles)
        } else {
            // Translate both pages up front (so a fault on the second
            // page leaves no partial write), then commit.
            let split = PAGE_BYTES - va.byte_offset();
            let t0 = self.translate(mem, va, mode, true, costs)?;
            let t1 = self.translate(mem, va.wrapping_add(split), mode, true, costs)?;
            for i in 0..len {
                let pa = if i < split {
                    t0.pa + i
                } else {
                    t1.pa + (i - split)
                };
                mem.write_u8(pa, (value >> (8 * i)) as u8)?;
            }
            Ok(t0.cycles + t1.cycles)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vax_arch::Protection;

    const COSTS: CostModel = CostModel {
        base_instruction: 2,
        memory_reference: 1,
        tlb_miss_system: 6,
        tlb_miss_process: 12,
        exception_entry: 20,
        rei: 8,
        chm: 16,
        mtpr_ipl_fast: 4,
        mtpr_other: 8,
        context_switch: 40,
        probe_fast: 6,
        probevm: 8,
        movpsl: 3,
        string_per_byte: 1,
        set_modify_bit: 4,
        vm_emulation_trap: 30,
        device_csr: 20,
    };

    /// Builds: SPT at 0x1000 with 8 entries. S page 0 -> PFN 4 (UW),
    /// S page 1 -> PFN 5 (URKW), S page 2 holds the P0 page table
    /// (PFN 6), S page 3 -> invalid-but-UW (null), S page 4 -> KW.
    fn setup() -> (PhysMemory, Mmu) {
        let mut mem = PhysMemory::new(64 * 1024);
        let mut mmu = Mmu::new();
        let spt = 0x1000;
        let e = |pfn, prot, v, m| -> u32 { Pte::build(pfn, prot, v, m).raw() };
        mem.write_u32(spt, e(4, Protection::Uw, true, true))
            .unwrap();
        mem.write_u32(spt + 4, e(5, Protection::Urkw, true, true))
            .unwrap();
        mem.write_u32(spt + 8, e(6, Protection::Kw, true, true))
            .unwrap();
        mem.write_u32(spt + 12, Pte::NULL.raw()).unwrap();
        mem.write_u32(spt + 16, e(7, Protection::Kw, true, true))
            .unwrap();
        mmu.set_sbr(spt);
        mmu.set_slr(8);
        // P0 page table lives in S space page 2 (phys page 6): P0 page 0
        // -> PFN 8 (UW, not yet modified).
        mem.write_u32(6 * 512, e(8, Protection::Uw, true, false))
            .unwrap();
        mmu.set_p0br(0x8000_0000 + 2 * 512);
        mmu.set_p0lr(1);
        mmu.set_mapen(true);
        (mem, mmu)
    }

    fn s_va(page: u32, off: u32) -> VirtAddr {
        VirtAddr::new(0x8000_0000 + page * 512 + off)
    }

    #[test]
    fn identity_when_mapen_off() {
        let mut mem = PhysMemory::new(4096);
        let mut mmu = Mmu::new();
        let t = mmu
            .translate(
                &mut mem,
                VirtAddr::new(0x123),
                AccessMode::User,
                true,
                &COSTS,
            )
            .unwrap();
        assert_eq!(t.pa, 0x123);
    }

    #[test]
    fn system_translation_and_tlb_hit() {
        let (mut mem, mut mmu) = setup();
        let t1 = mmu
            .translate(&mut mem, s_va(0, 5), AccessMode::User, false, &COSTS)
            .unwrap();
        assert_eq!(t1.pa, 4 * 512 + 5);
        assert!(t1.cycles > 0, "miss should be charged");
        let t2 = mmu
            .translate(&mut mem, s_va(0, 9), AccessMode::User, false, &COSTS)
            .unwrap();
        assert_eq!(t2.pa, 4 * 512 + 9);
        assert_eq!(t2.cycles, 0, "hit should be free");
    }

    #[test]
    fn protection_checked_before_valid_bit() {
        let (mut mem, mut mmu) = setup();
        // S page 4 is KW and valid: user read must be an access violation,
        // not a TNV.
        let err = mmu
            .translate(&mut mem, s_va(4, 0), AccessMode::User, false, &COSTS)
            .unwrap_err();
        assert!(matches!(err, MemFault::AccessViolation { .. }), "{err}");
        // S page 3 is the null PTE (UW, invalid): protection passes, then
        // TNV — the shadow-fill hook.
        let err = mmu
            .translate(&mut mem, s_va(3, 0), AccessMode::User, true, &COSTS)
            .unwrap_err();
        assert!(
            matches!(err, MemFault::TranslationNotValid { pte_ref: false, .. }),
            "{err}"
        );
    }

    #[test]
    fn length_violation_is_access_violation() {
        let (mut mem, mut mmu) = setup();
        let err = mmu
            .translate(&mut mem, s_va(100, 0), AccessMode::Kernel, false, &COSTS)
            .unwrap_err();
        assert!(
            matches!(err, MemFault::AccessViolation { length: true, .. }),
            "{err}"
        );
    }

    #[test]
    fn process_translation_via_double_walk() {
        let (mut mem, mut mmu) = setup();
        let t = mmu
            .translate(
                &mut mem,
                VirtAddr::new(0x14),
                AccessMode::User,
                false,
                &COSTS,
            )
            .unwrap();
        assert_eq!(t.pa, 8 * 512 + 0x14);
        // P0 length violation.
        let err = mmu
            .translate(
                &mut mem,
                VirtAddr::new(600),
                AccessMode::User,
                false,
                &COSTS,
            )
            .unwrap_err();
        assert!(matches!(
            err,
            MemFault::AccessViolation { length: true, .. }
        ));
    }

    #[test]
    fn hardware_sets_modify_bit_on_standard_vax() {
        let (mut mem, mut mmu) = setup();
        assert!(!mmu.modify_fault_enabled());
        mmu.translate(
            &mut mem,
            VirtAddr::new(0x14),
            AccessMode::User,
            true,
            &COSTS,
        )
        .unwrap();
        let pte = Pte::from_raw(mem.read_u32(6 * 512).unwrap());
        assert!(pte.modified(), "hardware must set PTE<M>");
        assert_eq!(mmu.counters().m_bit_sets, 1);
    }

    #[test]
    fn modify_fault_on_modified_vax() {
        let (mut mem, mut mmu) = setup();
        mmu.set_modify_fault_enabled(true);
        let err = mmu
            .translate(
                &mut mem,
                VirtAddr::new(0x14),
                AccessMode::User,
                true,
                &COSTS,
            )
            .unwrap_err();
        assert!(matches!(err, MemFault::ModifyFault { .. }), "{err}");
        assert_eq!(mmu.counters().modify_faults, 1);
        // PTE<M> was NOT set by hardware.
        assert!(!Pte::from_raw(mem.read_u32(6 * 512).unwrap()).modified());

        // Software sets M (as the handler must) and retries: succeeds
        // without requiring a TB invalidate.
        let pte = Pte::from_raw(mem.read_u32(6 * 512).unwrap());
        mem.write_u32(6 * 512, pte.with_modified(true).raw())
            .unwrap();
        let t = mmu
            .translate(
                &mut mem,
                VirtAddr::new(0x14),
                AccessMode::User,
                true,
                &COSTS,
            )
            .unwrap();
        assert_eq!(t.pa, 8 * 512 + 0x14);
    }

    #[test]
    fn reads_never_raise_modify_fault() {
        let (mut mem, mut mmu) = setup();
        mmu.set_modify_fault_enabled(true);
        assert!(mmu
            .translate(
                &mut mem,
                VirtAddr::new(0x14),
                AccessMode::User,
                false,
                &COSTS
            )
            .is_ok());
    }

    #[test]
    fn probe_reports_protection_without_faulting_on_invalid() {
        let (mem, mut mmu) = setup();
        // Null PTE: probe succeeds (UW) but reports invalid.
        let p = mmu
            .probe(&mem, s_va(3, 0), AccessMode::User, true, &COSTS)
            .unwrap();
        assert!(p.accessible);
        assert!(!p.pte_valid);
        // KW page from user: inaccessible.
        let p = mmu
            .probe(&mem, s_va(4, 0), AccessMode::User, false, &COSTS)
            .unwrap();
        assert!(!p.accessible);
        // Length violation: inaccessible, not a fault.
        let p = mmu
            .probe(&mem, s_va(100, 0), AccessMode::Kernel, false, &COSTS)
            .unwrap();
        assert!(!p.accessible);
    }

    #[test]
    fn probe_does_not_set_modify_bit() {
        let (mem, mut mmu) = setup();
        mmu.probe(&mem, VirtAddr::new(0x14), AccessMode::User, true, &COSTS)
            .unwrap();
        assert!(!Pte::from_raw(mem.read_u32(6 * 512).unwrap()).modified());
    }

    #[test]
    fn read_write_virt_round_trip_and_page_crossing() {
        let (mut mem, mut mmu) = setup();
        // S pages 0 and 1 are adjacent (PFN 4 and 5): write across them.
        // Page 1 is URKW, so write from kernel.
        let va = s_va(0, 510);
        mmu.write_virt(&mut mem, va, 0xAABBCCDD, 4, AccessMode::Kernel, &COSTS)
            .unwrap();
        let (v, _) = mmu
            .read_virt(&mut mem, va, 4, AccessMode::Kernel, &COSTS)
            .unwrap();
        assert_eq!(v, 0xAABBCCDD);
        // Physical placement: 2 bytes at end of PFN 4, 2 at start of PFN 5.
        assert_eq!(mem.read_u16(4 * 512 + 510).unwrap(), 0xCCDD);
        assert_eq!(mem.read_u16(5 * 512).unwrap(), 0xAABB);
    }

    #[test]
    fn page_crossing_write_faults_atomically() {
        let (mut mem, mut mmu) = setup();
        // Page 1 is URKW: user write to the second half must fail and
        // leave the first page untouched.
        let va = s_va(0, 510);
        let before = mem.read_u16(4 * 512 + 510).unwrap();
        assert!(mmu
            .write_virt(&mut mem, va, 0x11223344, 4, AccessMode::User, &COSTS)
            .is_err());
        assert_eq!(mem.read_u16(4 * 512 + 510).unwrap(), before);
    }

    #[test]
    fn invalid_process_pte_page_reports_pte_ref() {
        let (mut mem, mut mmu) = setup();
        // Point P0BR at the null-PTE S page (page 3): fetching the process
        // PTE faults with pte_ref set.
        mmu.set_p0br(0x8000_0000 + 3 * 512);
        mmu.set_p0lr(1);
        let err = mmu
            .translate(&mut mem, VirtAddr::new(0), AccessMode::User, false, &COSTS)
            .unwrap_err();
        assert!(
            matches!(err, MemFault::TranslationNotValid { pte_ref: true, .. }),
            "{err}"
        );
    }

    #[test]
    fn tlb_shootdown_required_after_pte_change() {
        let (mut mem, mut mmu) = setup();
        mmu.translate(&mut mem, s_va(0, 0), AccessMode::User, false, &COSTS)
            .unwrap();
        // Change the PTE to point elsewhere without invalidating: stale
        // translation is returned (hardware may cache valid PTEs).
        mem.write_u32(0x1000, Pte::build(9, Protection::Uw, true, true).raw())
            .unwrap();
        let t = mmu
            .translate(&mut mem, s_va(0, 0), AccessMode::User, false, &COSTS)
            .unwrap();
        assert_eq!(t.pa, 4 * 512);
        // After TBIS, the new mapping is used.
        mmu.tlb_mut().invalidate_single(s_va(0, 0));
        let t = mmu
            .translate(&mut mem, s_va(0, 0), AccessMode::User, false, &COSTS)
            .unwrap();
        assert_eq!(t.pa, 9 * 512);
    }
}
