//! Simulated physical memory.

use crate::fault::MemFault;
use vax_arch::va::{PAGE_BYTES, PAGE_SHIFT};

/// A bank of simulated physical memory.
///
/// Addresses are 32-bit physical byte addresses starting at 0. References
/// beyond the configured size fail with [`MemFault::NonExistent`], which the
/// CPU surfaces as a machine check — on the paper's virtual VAX, touching
/// nonexistent memory is grounds for halting the VM (§5, "Hardware
/// errors").
///
/// # Example
///
/// ```
/// use vax_mem::PhysMemory;
///
/// let mut mem = PhysMemory::new(4096);
/// mem.write_u32(0x10, 0xdead_beef)?;
/// assert_eq!(mem.read_u32(0x10)?, 0xdead_beef);
/// assert_eq!(mem.read_u16(0x10)?, 0xbeef); // little-endian
/// # Ok::<(), vax_mem::MemFault>(())
/// ```
#[derive(Debug, Clone)]
pub struct PhysMemory {
    bytes: Vec<u8>,
    /// Pages whose contents back decoded-instruction-cache entries. A
    /// write to a marked page is recorded in `dirty_code` so the CPU can
    /// invalidate the stale cache entries before its next decode
    /// (self-modifying code, DMA, VMM pokes — anything that mutates
    /// physical memory funnels through the write methods below).
    code_pages: Vec<bool>,
    /// Marked pages written since the last [`PhysMemory::take_dirty_code_pages`].
    dirty_code: Vec<u32>,
}

/// Equality is over memory *contents*; the decode-cache bookkeeping is
/// transparent (two memories holding the same bytes are equal).
impl PartialEq for PhysMemory {
    fn eq(&self, other: &PhysMemory) -> bool {
        self.bytes == other.bytes
    }
}

impl Eq for PhysMemory {}

impl PhysMemory {
    /// Allocates `size` bytes of zeroed memory, rounded up to a whole page.
    pub fn new(size: u32) -> PhysMemory {
        let rounded = size.div_ceil(PAGE_BYTES) * PAGE_BYTES;
        PhysMemory {
            bytes: vec![0; rounded as usize],
            code_pages: vec![false; (rounded >> PAGE_SHIFT) as usize],
            dirty_code: Vec::new(),
        }
    }

    /// Total size in bytes.
    pub fn size(&self) -> u32 {
        self.bytes.len() as u32
    }

    /// Total size in pages.
    pub fn pages(&self) -> u32 {
        self.size() / PAGE_BYTES
    }

    /// True if the `len`-byte range starting at `pa` is backed by memory.
    pub fn contains(&self, pa: u32, len: u32) -> bool {
        (pa as u64) + (len as u64) <= self.bytes.len() as u64
    }

    fn check(&self, pa: u32, len: u32) -> Result<usize, MemFault> {
        if self.contains(pa, len) {
            Ok(pa as usize)
        } else {
            Err(MemFault::NonExistent { pa })
        }
    }

    /// Records a write over `[pa, pa+len)` against the code-page marks.
    #[inline]
    fn note_write(&mut self, pa: u32, len: u32) {
        let first = pa >> PAGE_SHIFT;
        let last = (pa + len - 1) >> PAGE_SHIFT;
        for pfn in first..=last {
            if self.code_pages[pfn as usize] {
                self.dirty_code.push(pfn);
            }
        }
    }

    // ---- decode-cache write tracking ----

    /// Marks a page as backing decoded-instruction-cache entries; later
    /// writes to it are reported by [`PhysMemory::take_dirty_code_pages`].
    pub fn note_code_page(&mut self, pfn: u32) {
        self.code_pages[pfn as usize] = true;
    }

    /// Clears a page's code mark (after its cache entries are dropped).
    pub fn clear_code_page(&mut self, pfn: u32) {
        self.code_pages[pfn as usize] = false;
    }

    /// Clears every code mark and pending dirty notice.
    pub fn clear_all_code_pages(&mut self) {
        self.code_pages.fill(false);
        self.dirty_code.clear();
    }

    /// True if any marked code page has been written since the last drain.
    #[inline]
    pub fn has_dirty_code(&self) -> bool {
        !self.dirty_code.is_empty()
    }

    /// Drains the set of marked pages written since the last call (may
    /// contain duplicates; empty drains allocate nothing).
    pub fn take_dirty_code_pages(&mut self) -> Vec<u32> {
        std::mem::take(&mut self.dirty_code)
    }

    /// The bytes from `pa` through the end of its physical page — the
    /// borrow-friendly handle the CPU's I-stream fast path parses
    /// instruction bytes from after translating the fetch page once.
    pub fn page_tail(&self, pa: u32) -> Option<&[u8]> {
        if !self.contains(pa, 1) {
            return None;
        }
        let end = (((pa >> PAGE_SHIFT) + 1) << PAGE_SHIFT).min(self.size());
        Some(&self.bytes[pa as usize..end as usize])
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`MemFault::NonExistent`] if `pa` is beyond physical memory.
    pub fn read_u8(&self, pa: u32) -> Result<u8, MemFault> {
        let i = self.check(pa, 1)?;
        Ok(self.bytes[i])
    }

    /// Reads a little-endian 16-bit word.
    ///
    /// # Errors
    ///
    /// [`MemFault::NonExistent`] if the range extends beyond memory.
    pub fn read_u16(&self, pa: u32) -> Result<u16, MemFault> {
        let i = self.check(pa, 2)?;
        Ok(u16::from_le_bytes([self.bytes[i], self.bytes[i + 1]]))
    }

    /// Reads a little-endian 32-bit longword.
    ///
    /// # Errors
    ///
    /// [`MemFault::NonExistent`] if the range extends beyond memory.
    pub fn read_u32(&self, pa: u32) -> Result<u32, MemFault> {
        let i = self.check(pa, 4)?;
        Ok(u32::from_le_bytes([
            self.bytes[i],
            self.bytes[i + 1],
            self.bytes[i + 2],
            self.bytes[i + 3],
        ]))
    }

    /// Writes one byte.
    ///
    /// # Errors
    ///
    /// [`MemFault::NonExistent`] if `pa` is beyond physical memory.
    pub fn write_u8(&mut self, pa: u32, v: u8) -> Result<(), MemFault> {
        let i = self.check(pa, 1)?;
        self.note_write(pa, 1);
        self.bytes[i] = v;
        Ok(())
    }

    /// Writes a little-endian 16-bit word.
    ///
    /// # Errors
    ///
    /// [`MemFault::NonExistent`] if the range extends beyond memory.
    pub fn write_u16(&mut self, pa: u32, v: u16) -> Result<(), MemFault> {
        let i = self.check(pa, 2)?;
        self.note_write(pa, 2);
        self.bytes[i..i + 2].copy_from_slice(&v.to_le_bytes());
        Ok(())
    }

    /// Writes a little-endian 32-bit longword.
    ///
    /// # Errors
    ///
    /// [`MemFault::NonExistent`] if the range extends beyond memory.
    pub fn write_u32(&mut self, pa: u32, v: u32) -> Result<(), MemFault> {
        let i = self.check(pa, 4)?;
        self.note_write(pa, 4);
        self.bytes[i..i + 4].copy_from_slice(&v.to_le_bytes());
        Ok(())
    }

    /// Copies a slice into memory at `pa`.
    ///
    /// # Errors
    ///
    /// [`MemFault::NonExistent`] if the range extends beyond memory.
    pub fn write_slice(&mut self, pa: u32, data: &[u8]) -> Result<(), MemFault> {
        let i = self.check(pa, data.len() as u32)?;
        if !data.is_empty() {
            self.note_write(pa, data.len() as u32);
        }
        self.bytes[i..i + data.len()].copy_from_slice(data);
        Ok(())
    }

    /// Reads `len` bytes starting at `pa`.
    ///
    /// # Errors
    ///
    /// [`MemFault::NonExistent`] if the range extends beyond memory.
    pub fn read_slice(&self, pa: u32, len: u32) -> Result<&[u8], MemFault> {
        let i = self.check(pa, len)?;
        Ok(&self.bytes[i..i + len as usize])
    }

    /// Zero-fills the `len`-byte range at `pa`.
    ///
    /// # Errors
    ///
    /// [`MemFault::NonExistent`] if the range extends beyond memory.
    pub fn zero_range(&mut self, pa: u32, len: u32) -> Result<(), MemFault> {
        let i = self.check(pa, len)?;
        if len > 0 {
            self.note_write(pa, len);
        }
        self.bytes[i..i + len as usize].fill(0);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_rounds_to_pages() {
        assert_eq!(PhysMemory::new(1).size(), PAGE_BYTES);
        assert_eq!(PhysMemory::new(PAGE_BYTES + 1).pages(), 2);
        assert_eq!(PhysMemory::new(0).size(), 0);
    }

    #[test]
    fn little_endian_round_trip() {
        let mut m = PhysMemory::new(4096);
        m.write_u32(100, 0x0403_0201).unwrap();
        assert_eq!(m.read_u8(100).unwrap(), 0x01);
        assert_eq!(m.read_u8(103).unwrap(), 0x04);
        assert_eq!(m.read_u16(101).unwrap(), 0x0302);
        assert_eq!(m.read_u32(100).unwrap(), 0x0403_0201);
    }

    #[test]
    fn nonexistent_reference_faults() {
        let mut m = PhysMemory::new(512);
        assert!(matches!(
            m.read_u8(512),
            Err(MemFault::NonExistent { pa: 512 })
        ));
        assert!(m.read_u32(510).is_err()); // straddles the end
        assert!(m.write_u32(510, 0).is_err());
        assert!(m.read_u32(508).is_ok());
        // Wrap-around must not panic or succeed.
        assert!(m.read_u32(u32::MAX - 1).is_err());
    }

    #[test]
    fn code_page_write_tracking() {
        let mut m = PhysMemory::new(4 * PAGE_BYTES);
        m.note_code_page(1);
        // Writes to unmarked pages are not reported.
        m.write_u32(0, 7).unwrap();
        assert!(!m.has_dirty_code());
        // Any write flavor touching a marked page is.
        m.write_u8(PAGE_BYTES, 1).unwrap();
        assert!(m.has_dirty_code());
        assert_eq!(m.take_dirty_code_pages(), vec![1]);
        assert!(!m.has_dirty_code());
        // A straddling write reports both touched pages.
        m.note_code_page(2);
        m.write_u32(2 * PAGE_BYTES - 2, 0xffff_ffff).unwrap();
        assert_eq!(m.take_dirty_code_pages(), vec![1, 2]);
        // Clearing the mark stops reporting.
        m.clear_code_page(1);
        m.write_u16(PAGE_BYTES + 8, 3).unwrap();
        assert!(!m.has_dirty_code());
        m.write_slice(2 * PAGE_BYTES, &[1, 2, 3]).unwrap();
        m.zero_range(2 * PAGE_BYTES, 4).unwrap();
        assert_eq!(m.take_dirty_code_pages(), vec![2, 2]);
        m.clear_all_code_pages();
        m.write_u8(2 * PAGE_BYTES, 9).unwrap();
        assert!(!m.has_dirty_code());
    }

    #[test]
    fn equality_ignores_tracking_state() {
        let mut a = PhysMemory::new(PAGE_BYTES);
        let b = PhysMemory::new(PAGE_BYTES);
        a.note_code_page(0);
        a.write_u8(0, 0).unwrap(); // dirty notice, same contents
        assert_eq!(a, b);
        a.write_u8(0, 1).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn page_tail_spans_to_page_end() {
        let m = PhysMemory::new(2 * PAGE_BYTES);
        assert_eq!(m.page_tail(0).unwrap().len(), PAGE_BYTES as usize);
        assert_eq!(m.page_tail(10).unwrap().len(), (PAGE_BYTES - 10) as usize);
        assert_eq!(m.page_tail(2 * PAGE_BYTES - 1).unwrap().len(), 1);
        assert!(m.page_tail(2 * PAGE_BYTES).is_none());
    }

    #[test]
    fn slices() {
        let mut m = PhysMemory::new(512);
        m.write_slice(8, &[1, 2, 3, 4]).unwrap();
        assert_eq!(m.read_slice(8, 4).unwrap(), &[1, 2, 3, 4]);
        m.zero_range(8, 2).unwrap();
        assert_eq!(m.read_slice(8, 4).unwrap(), &[0, 0, 3, 4]);
        assert!(m.write_slice(510, &[0; 4]).is_err());
    }
}
