//! Simulated physical memory, with copy-on-write forking.

use crate::fault::MemFault;
use std::sync::Arc;
use vax_arch::va::{PAGE_BYTES, PAGE_SHIFT};

/// A bank of simulated physical memory.
///
/// Addresses are 32-bit physical byte addresses starting at 0. References
/// beyond the configured size fail with [`MemFault::NonExistent`], which the
/// CPU surfaces as a machine check — on the paper's virtual VAX, touching
/// nonexistent memory is grounds for halting the VM (§5, "Hardware
/// errors").
///
/// # Copy-on-write forking
///
/// [`PhysMemory::fork`] freezes the current contents into an [`Arc`]'d
/// *base* shared between the parent and every child, and turns each of
/// them into an overlay: reads of an untouched page come straight from the
/// shared base, and the first write to a page copies that one page into
/// the overlay (`O(dirty pages)`, not `O(size)`). An unforked memory pays
/// no overlay cost beyond one well-predicted branch per access.
///
/// # Example
///
/// ```
/// use vax_mem::PhysMemory;
///
/// let mut mem = PhysMemory::new(4096);
/// mem.write_u32(0x10, 0xdead_beef)?;
/// assert_eq!(mem.read_u32(0x10)?, 0xdead_beef);
/// assert_eq!(mem.read_u16(0x10)?, 0xbeef); // little-endian
/// # Ok::<(), vax_mem::MemFault>(())
/// ```
#[derive(Debug, Clone)]
pub struct PhysMemory {
    /// The private overlay. Holds every byte when unforked; holds only
    /// materialized (resident) pages after a fork.
    bytes: Vec<u8>,
    /// The frozen copy-on-write base shared with fork relatives, if any.
    /// Always the same length as `bytes`.
    base: Option<Arc<Vec<u8>>>,
    /// Per-page: true if the page lives in `bytes` rather than `base`.
    /// Empty (and unused) when `base` is `None`.
    resident: Vec<bool>,
    /// Number of `true` entries in `resident`.
    resident_count: u32,
    /// Pages whose contents back decoded-instruction-cache entries. A
    /// write to a marked page is recorded in `dirty_code` so the CPU can
    /// invalidate the stale cache entries before its next decode
    /// (self-modifying code, DMA, VMM pokes — anything that mutates
    /// physical memory funnels through the write methods below).
    code_pages: Vec<bool>,
    /// Marked pages written since the last [`PhysMemory::take_dirty_code_pages`].
    dirty_code: Vec<u32>,
    /// Optional working-set write tracker (profiling / incremental
    /// snapshots). `None` — the default — costs one predictable branch
    /// per write; see [`PhysMemory::enable_write_tracking`].
    tracker: Option<Box<WriteTracker>>,
}

/// Working-set telemetry state: which pages the guest has written.
///
/// Purely observational — it is written to by the same
/// [`PhysMemory::note_write`] funnel that feeds self-modifying-code
/// tracking and never affects memory contents, so enabling it cannot
/// perturb execution. `dirty` is the *drainable* set (an incremental
/// snapshot consumes it via [`PhysMemory::take_dirty_pages`]); `touched`
/// accumulates for the life of the tracker; `dirty_events` counts
/// page-dirtying transitions monotonically across drains so a sampler
/// can difference it into per-interval dirty rates.
#[derive(Debug, Clone)]
struct WriteTracker {
    touched: Vec<bool>,
    touched_count: u32,
    dirty: Vec<bool>,
    dirty_count: u32,
    dirty_events: u64,
}

impl WriteTracker {
    /// The clean→dirty transition, at most once per page per drain
    /// interval; kept out of line so the per-write fast path in
    /// `note_write` stays one load and one predictable branch.
    #[cold]
    #[inline(never)]
    fn mark_dirty(&mut self, p: usize) {
        self.dirty[p] = true;
        self.dirty_count += 1;
        self.dirty_events += 1;
        if !self.touched[p] {
            self.touched[p] = true;
            self.touched_count += 1;
        }
    }
}

/// Equality is over *effective* memory contents; the decode-cache
/// bookkeeping and the copy-on-write representation are transparent (a
/// freshly forked child equals its parent).
impl PartialEq for PhysMemory {
    fn eq(&self, other: &PhysMemory) -> bool {
        if self.size() != other.size() {
            return false;
        }
        if self.base.is_none() && other.base.is_none() {
            return self.bytes == other.bytes;
        }
        (0..self.pages()).all(|p| self.page(p) == other.page(p))
    }
}

impl Eq for PhysMemory {}

impl PhysMemory {
    /// Allocates `size` bytes of zeroed memory, rounded up to a whole page.
    pub fn new(size: u32) -> PhysMemory {
        let rounded = size.div_ceil(PAGE_BYTES) * PAGE_BYTES;
        PhysMemory {
            bytes: vec![0; rounded as usize],
            base: None,
            resident: Vec::new(),
            resident_count: 0,
            code_pages: vec![false; (rounded >> PAGE_SHIFT) as usize],
            dirty_code: Vec::new(),
            tracker: None,
        }
    }

    /// Total size in bytes.
    pub fn size(&self) -> u32 {
        self.bytes.len() as u32
    }

    /// Total size in pages.
    pub fn pages(&self) -> u32 {
        self.size() / PAGE_BYTES
    }

    /// True if the `len`-byte range starting at `pa` is backed by memory.
    pub fn contains(&self, pa: u32, len: u32) -> bool {
        (pa as u64) + (len as u64) <= self.bytes.len() as u64
    }

    fn check(&self, pa: u32, len: u32) -> Result<usize, MemFault> {
        if self.contains(pa, len) {
            Ok(pa as usize)
        } else {
            Err(MemFault::NonExistent { pa })
        }
    }

    /// Records a write over `[pa, pa+len)` against the code-page marks
    /// and, when enabled, the working-set tracker.
    #[inline]
    fn note_write(&mut self, pa: u32, len: u32) {
        let first = pa >> PAGE_SHIFT;
        let last = (pa + len - 1) >> PAGE_SHIFT;
        for pfn in first..=last {
            if self.code_pages[pfn as usize] {
                self.dirty_code.push(pfn);
            }
        }
        if let Some(t) = &mut self.tracker {
            for pfn in first..=last {
                // Dirty implies touched (drains clear only the dirty
                // side), so an already-dirty page — the overwhelmingly
                // common case — needs no further bookkeeping.
                let p = pfn as usize;
                if !t.dirty[p] {
                    t.mark_dirty(p);
                }
            }
        }
    }

    // ---- copy-on-write fork ----

    /// One byte of effective contents (overlay if resident, base
    /// otherwise).
    #[inline]
    fn byte_at(&self, i: usize) -> u8 {
        match &self.base {
            None => self.bytes[i],
            Some(base) => {
                if self.resident[i >> PAGE_SHIFT] {
                    self.bytes[i]
                } else {
                    base[i]
                }
            }
        }
    }

    /// Copies page `pfn` from the shared base into the private overlay so
    /// it can be written. No-op when unforked or already resident.
    #[inline]
    fn materialize(&mut self, pfn: u32) {
        let Some(base) = &self.base else { return };
        let p = pfn as usize;
        if self.resident[p] {
            return;
        }
        let start = p << PAGE_SHIFT;
        let end = start + PAGE_BYTES as usize;
        self.bytes[start..end].copy_from_slice(&base[start..end]);
        self.resident[p] = true;
        self.resident_count += 1;
    }

    /// Materializes every page overlapping `[pa, pa+len)`.
    #[inline]
    fn ensure_resident(&mut self, pa: u32, len: u32) {
        if self.base.is_none() || len == 0 {
            return;
        }
        let first = pa >> PAGE_SHIFT;
        let last = (pa + len - 1) >> PAGE_SHIFT;
        for pfn in first..=last {
            self.materialize(pfn);
        }
    }

    /// Freezes the current effective contents into a shareable base and
    /// turns `self` into an overlay over it with no resident pages.
    ///
    /// Cheap (`Arc` clone) when already frozen with nothing written since;
    /// otherwise merges the overlay into a fresh base, `O(size)`.
    fn freeze(&mut self) -> Arc<Vec<u8>> {
        if let Some(base) = &self.base {
            if self.resident_count == 0 {
                return Arc::clone(base);
            }
        }
        let mut merged = std::mem::take(&mut self.bytes);
        if let Some(base) = &self.base {
            for (p, resident) in self.resident.iter().enumerate() {
                if !resident {
                    let start = p << PAGE_SHIFT;
                    let end = start + PAGE_BYTES as usize;
                    merged[start..end].copy_from_slice(&base[start..end]);
                }
            }
        }
        let frozen = Arc::new(merged);
        self.bytes = vec![0; frozen.len()];
        self.resident = vec![false; (frozen.len() as u32 >> PAGE_SHIFT) as usize];
        self.resident_count = 0;
        self.base = Some(Arc::clone(&frozen));
        frozen
    }

    /// Forks a copy-on-write child sharing every page with `self`.
    ///
    /// Both sides become overlays over a common frozen base: the child
    /// starts with zero private pages, and each side pays one page copy on
    /// its first write to any page. The child's decode-cache write
    /// tracking starts clean (its CPU must start with a cold decode
    /// cache).
    pub fn fork(&mut self) -> PhysMemory {
        let base = self.freeze();
        let pages = (base.len() as u32 >> PAGE_SHIFT) as usize;
        PhysMemory {
            bytes: vec![0; base.len()],
            resident: vec![false; pages],
            resident_count: 0,
            base: Some(base),
            code_pages: vec![false; pages],
            dirty_code: Vec::new(),
            tracker: None,
        }
    }

    /// True if this memory shares a copy-on-write base with fork
    /// relatives.
    pub fn is_cow(&self) -> bool {
        self.base.is_some()
    }

    /// Number of pages privately materialized since the last fork
    /// (0 when unforked).
    pub fn resident_pages(&self) -> u32 {
        self.resident_count
    }

    /// The page numbers privately materialized since the last fork, in
    /// ascending order (empty when unforked). Because materialization
    /// happens on — and only on — the write paths, this is an exact,
    /// independently-derived record of the pages written since the fork;
    /// the working-set oracle tests compare it against
    /// [`PhysMemory::dirty_pages`].
    pub fn resident_page_numbers(&self) -> Vec<u32> {
        self.resident
            .iter()
            .enumerate()
            .filter(|(_, r)| **r)
            .map(|(p, _)| p as u32)
            .collect()
    }

    /// Fraction of pages still shared with the copy-on-write base, in
    /// `[0, 1]` (1.0 right after a fork, 0.0 when unforked or fully
    /// diverged).
    pub fn shared_fraction(&self) -> f64 {
        if self.base.is_none() || self.pages() == 0 {
            return 0.0;
        }
        1.0 - self.resident_count as f64 / self.pages() as f64
    }

    /// The effective contents of page `pfn`, or `None` past the end.
    pub fn page(&self, pfn: u32) -> Option<&[u8]> {
        if pfn >= self.pages() {
            return None;
        }
        self.page_tail(pfn << PAGE_SHIFT)
    }

    // ---- decode-cache write tracking ----

    /// Marks a page as backing decoded-instruction-cache entries; later
    /// writes to it are reported by [`PhysMemory::take_dirty_code_pages`].
    pub fn note_code_page(&mut self, pfn: u32) {
        self.code_pages[pfn as usize] = true;
    }

    /// Clears a page's code mark (after its cache entries are dropped).
    pub fn clear_code_page(&mut self, pfn: u32) {
        self.code_pages[pfn as usize] = false;
    }

    /// Clears every code mark and pending dirty notice.
    pub fn clear_all_code_pages(&mut self) {
        self.code_pages.fill(false);
        self.dirty_code.clear();
    }

    /// True if any marked code page has been written since the last drain.
    #[inline]
    pub fn has_dirty_code(&self) -> bool {
        !self.dirty_code.is_empty()
    }

    /// Drains the set of marked pages written since the last call (may
    /// contain duplicates; empty drains allocate nothing).
    pub fn take_dirty_code_pages(&mut self) -> Vec<u32> {
        std::mem::take(&mut self.dirty_code)
    }

    // ---- working-set write tracking ----

    /// Enables working-set telemetry: from now on every write marks its
    /// pages touched and dirty (see [`WriteTracker`]). Re-enabling resets
    /// the tracker. Observational only — contents, faults, and timing on
    /// the simulated clock are unaffected.
    pub fn enable_write_tracking(&mut self) {
        let pages = self.pages() as usize;
        self.tracker = Some(Box::new(WriteTracker {
            touched: vec![false; pages],
            touched_count: 0,
            dirty: vec![false; pages],
            dirty_count: 0,
            dirty_events: 0,
        }));
    }

    /// Disables working-set telemetry and drops its state.
    pub fn disable_write_tracking(&mut self) {
        self.tracker = None;
    }

    /// Whether working-set telemetry is enabled.
    pub fn write_tracking_enabled(&self) -> bool {
        self.tracker.is_some()
    }

    /// Distinct pages written since tracking was enabled or the dirty set
    /// was last drained (0 when tracking is off).
    pub fn dirty_page_count(&self) -> u32 {
        self.tracker.as_ref().map_or(0, |t| t.dirty_count)
    }

    /// Distinct pages written since tracking was enabled (0 when off).
    pub fn touched_page_count(&self) -> u32 {
        self.tracker.as_ref().map_or(0, |t| t.touched_count)
    }

    /// Monotonic count of page-dirtying events — unlike
    /// [`PhysMemory::dirty_page_count`], never reset by a drain — so a
    /// sampler can difference it into per-interval dirty rates.
    #[inline]
    pub fn dirty_page_events(&self) -> u64 {
        self.tracker.as_ref().map_or(0, |t| t.dirty_events)
    }

    /// The current dirty-page set in ascending order, without draining.
    pub fn dirty_pages(&self) -> Vec<u32> {
        self.tracker.as_ref().map_or_else(Vec::new, |t| {
            t.dirty
                .iter()
                .enumerate()
                .filter(|(_, d)| **d)
                .map(|(p, _)| p as u32)
                .collect()
        })
    }

    /// Drains and returns the dirty-page set in ascending order — the
    /// seam an incremental snapshot consumes: pages dirtied after this
    /// call land in the next drain. Touched pages and the monotonic
    /// event count are unaffected.
    pub fn take_dirty_pages(&mut self) -> Vec<u32> {
        match &mut self.tracker {
            None => Vec::new(),
            Some(t) => {
                let pages: Vec<u32> = t
                    .dirty
                    .iter()
                    .enumerate()
                    .filter(|(_, d)| **d)
                    .map(|(p, _)| p as u32)
                    .collect();
                t.dirty.fill(false);
                t.dirty_count = 0;
                pages
            }
        }
    }

    /// The touched-page set (since enable) in ascending order.
    pub fn touched_pages(&self) -> Vec<u32> {
        self.tracker.as_ref().map_or_else(Vec::new, |t| {
            t.touched
                .iter()
                .enumerate()
                .filter(|(_, d)| **d)
                .map(|(p, _)| p as u32)
                .collect()
        })
    }

    /// The bytes from `pa` through the end of its physical page — the
    /// borrow-friendly handle the CPU's I-stream fast path parses
    /// instruction bytes from after translating the fetch page once.
    pub fn page_tail(&self, pa: u32) -> Option<&[u8]> {
        if !self.contains(pa, 1) {
            return None;
        }
        let end = (((pa >> PAGE_SHIFT) + 1) << PAGE_SHIFT).min(self.size());
        let src: &[u8] = match &self.base {
            Some(base) if !self.resident[(pa >> PAGE_SHIFT) as usize] => base,
            _ => &self.bytes,
        };
        Some(&src[pa as usize..end as usize])
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`MemFault::NonExistent`] if `pa` is beyond physical memory.
    pub fn read_u8(&self, pa: u32) -> Result<u8, MemFault> {
        let i = self.check(pa, 1)?;
        Ok(self.byte_at(i))
    }

    /// Reads a little-endian 16-bit word.
    ///
    /// # Errors
    ///
    /// [`MemFault::NonExistent`] if the range extends beyond memory.
    pub fn read_u16(&self, pa: u32) -> Result<u16, MemFault> {
        let i = self.check(pa, 2)?;
        if self.base.is_none() {
            return Ok(u16::from_le_bytes([self.bytes[i], self.bytes[i + 1]]));
        }
        Ok(u16::from_le_bytes([self.byte_at(i), self.byte_at(i + 1)]))
    }

    /// Reads a little-endian 32-bit longword.
    ///
    /// # Errors
    ///
    /// [`MemFault::NonExistent`] if the range extends beyond memory.
    pub fn read_u32(&self, pa: u32) -> Result<u32, MemFault> {
        let i = self.check(pa, 4)?;
        if self.base.is_none() {
            return Ok(u32::from_le_bytes([
                self.bytes[i],
                self.bytes[i + 1],
                self.bytes[i + 2],
                self.bytes[i + 3],
            ]));
        }
        Ok(u32::from_le_bytes([
            self.byte_at(i),
            self.byte_at(i + 1),
            self.byte_at(i + 2),
            self.byte_at(i + 3),
        ]))
    }

    /// Writes one byte.
    ///
    /// # Errors
    ///
    /// [`MemFault::NonExistent`] if `pa` is beyond physical memory.
    pub fn write_u8(&mut self, pa: u32, v: u8) -> Result<(), MemFault> {
        let i = self.check(pa, 1)?;
        self.ensure_resident(pa, 1);
        self.note_write(pa, 1);
        self.bytes[i] = v;
        Ok(())
    }

    /// Writes a little-endian 16-bit word.
    ///
    /// # Errors
    ///
    /// [`MemFault::NonExistent`] if the range extends beyond memory.
    pub fn write_u16(&mut self, pa: u32, v: u16) -> Result<(), MemFault> {
        let i = self.check(pa, 2)?;
        self.ensure_resident(pa, 2);
        self.note_write(pa, 2);
        self.bytes[i..i + 2].copy_from_slice(&v.to_le_bytes());
        Ok(())
    }

    /// Writes a little-endian 32-bit longword.
    ///
    /// # Errors
    ///
    /// [`MemFault::NonExistent`] if the range extends beyond memory.
    pub fn write_u32(&mut self, pa: u32, v: u32) -> Result<(), MemFault> {
        let i = self.check(pa, 4)?;
        self.ensure_resident(pa, 4);
        self.note_write(pa, 4);
        self.bytes[i..i + 4].copy_from_slice(&v.to_le_bytes());
        Ok(())
    }

    /// Copies a slice into memory at `pa`.
    ///
    /// # Errors
    ///
    /// [`MemFault::NonExistent`] if the range extends beyond memory.
    pub fn write_slice(&mut self, pa: u32, data: &[u8]) -> Result<(), MemFault> {
        let i = self.check(pa, data.len() as u32)?;
        if !data.is_empty() {
            self.ensure_resident(pa, data.len() as u32);
            self.note_write(pa, data.len() as u32);
        }
        self.bytes[i..i + data.len()].copy_from_slice(data);
        Ok(())
    }

    /// Reads `len` bytes starting at `pa`, borrowing when the range lies
    /// in one backing store and copying only when a forked range mixes
    /// overlay and base pages.
    ///
    /// # Errors
    ///
    /// [`MemFault::NonExistent`] if the range extends beyond memory.
    pub fn read_slice(&self, pa: u32, len: u32) -> Result<std::borrow::Cow<'_, [u8]>, MemFault> {
        use std::borrow::Cow;
        let i = self.check(pa, len)?;
        let end = i + len as usize;
        let Some(base) = &self.base else {
            return Ok(Cow::Borrowed(&self.bytes[i..end]));
        };
        if len == 0 {
            return Ok(Cow::Borrowed(&[]));
        }
        let first = pa >> PAGE_SHIFT;
        let last = (pa + len - 1) >> PAGE_SHIFT;
        let lead = self.resident[first as usize];
        if (first..=last).all(|p| self.resident[p as usize] == lead) {
            let src: &[u8] = if lead { &self.bytes } else { base };
            return Ok(Cow::Borrowed(&src[i..end]));
        }
        Ok(Cow::Owned((i..end).map(|j| self.byte_at(j)).collect()))
    }

    /// Zero-fills the `len`-byte range at `pa`.
    ///
    /// # Errors
    ///
    /// [`MemFault::NonExistent`] if the range extends beyond memory.
    pub fn zero_range(&mut self, pa: u32, len: u32) -> Result<(), MemFault> {
        let i = self.check(pa, len)?;
        if len > 0 {
            self.ensure_resident(pa, len);
            self.note_write(pa, len);
        }
        self.bytes[i..i + len as usize].fill(0);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_rounds_to_pages() {
        assert_eq!(PhysMemory::new(1).size(), PAGE_BYTES);
        assert_eq!(PhysMemory::new(PAGE_BYTES + 1).pages(), 2);
        assert_eq!(PhysMemory::new(0).size(), 0);
    }

    #[test]
    fn little_endian_round_trip() {
        let mut m = PhysMemory::new(4096);
        m.write_u32(100, 0x0403_0201).unwrap();
        assert_eq!(m.read_u8(100).unwrap(), 0x01);
        assert_eq!(m.read_u8(103).unwrap(), 0x04);
        assert_eq!(m.read_u16(101).unwrap(), 0x0302);
        assert_eq!(m.read_u32(100).unwrap(), 0x0403_0201);
    }

    #[test]
    fn nonexistent_reference_faults() {
        let mut m = PhysMemory::new(512);
        assert!(matches!(
            m.read_u8(512),
            Err(MemFault::NonExistent { pa: 512 })
        ));
        assert!(m.read_u32(510).is_err()); // straddles the end
        assert!(m.write_u32(510, 0).is_err());
        assert!(m.read_u32(508).is_ok());
        // Wrap-around must not panic or succeed.
        assert!(m.read_u32(u32::MAX - 1).is_err());
    }

    #[test]
    fn code_page_write_tracking() {
        let mut m = PhysMemory::new(4 * PAGE_BYTES);
        m.note_code_page(1);
        // Writes to unmarked pages are not reported.
        m.write_u32(0, 7).unwrap();
        assert!(!m.has_dirty_code());
        // Any write flavor touching a marked page is.
        m.write_u8(PAGE_BYTES, 1).unwrap();
        assert!(m.has_dirty_code());
        assert_eq!(m.take_dirty_code_pages(), vec![1]);
        assert!(!m.has_dirty_code());
        // A straddling write reports both touched pages.
        m.note_code_page(2);
        m.write_u32(2 * PAGE_BYTES - 2, 0xffff_ffff).unwrap();
        assert_eq!(m.take_dirty_code_pages(), vec![1, 2]);
        // Clearing the mark stops reporting.
        m.clear_code_page(1);
        m.write_u16(PAGE_BYTES + 8, 3).unwrap();
        assert!(!m.has_dirty_code());
        m.write_slice(2 * PAGE_BYTES, &[1, 2, 3]).unwrap();
        m.zero_range(2 * PAGE_BYTES, 4).unwrap();
        assert_eq!(m.take_dirty_code_pages(), vec![2, 2]);
        m.clear_all_code_pages();
        m.write_u8(2 * PAGE_BYTES, 9).unwrap();
        assert!(!m.has_dirty_code());
    }

    #[test]
    fn equality_ignores_tracking_state() {
        let mut a = PhysMemory::new(PAGE_BYTES);
        let b = PhysMemory::new(PAGE_BYTES);
        a.note_code_page(0);
        a.write_u8(0, 0).unwrap(); // dirty notice, same contents
        assert_eq!(a, b);
        a.write_u8(0, 1).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn page_tail_spans_to_page_end() {
        let m = PhysMemory::new(2 * PAGE_BYTES);
        assert_eq!(m.page_tail(0).unwrap().len(), PAGE_BYTES as usize);
        assert_eq!(m.page_tail(10).unwrap().len(), (PAGE_BYTES - 10) as usize);
        assert_eq!(m.page_tail(2 * PAGE_BYTES - 1).unwrap().len(), 1);
        assert!(m.page_tail(2 * PAGE_BYTES).is_none());
    }

    #[test]
    fn slices() {
        let mut m = PhysMemory::new(512);
        m.write_slice(8, &[1, 2, 3, 4]).unwrap();
        assert_eq!(&*m.read_slice(8, 4).unwrap(), &[1, 2, 3, 4]);
        m.zero_range(8, 2).unwrap();
        assert_eq!(&*m.read_slice(8, 4).unwrap(), &[0, 0, 3, 4]);
        assert!(m.write_slice(510, &[0; 4]).is_err());
    }

    #[test]
    fn fork_shares_until_written() {
        let mut parent = PhysMemory::new(8 * PAGE_BYTES);
        parent.write_u32(0x10, 0xaaaa_bbbb).unwrap();
        parent.write_u32(3 * PAGE_BYTES, 0x1234_5678).unwrap();
        let mut child = parent.fork();
        assert!(parent.is_cow() && child.is_cow());
        assert_eq!(parent.resident_pages(), 0);
        assert_eq!(child.resident_pages(), 0);
        assert_eq!(child, parent);
        assert_eq!(child.read_u32(0x10).unwrap(), 0xaaaa_bbbb);
        assert_eq!(child.read_u32(3 * PAGE_BYTES).unwrap(), 0x1234_5678);

        // Child write diverges one page; parent view unchanged.
        child.write_u32(0x10, 0xdead_beef).unwrap();
        assert_eq!(child.resident_pages(), 1);
        assert_eq!(child.read_u32(0x10).unwrap(), 0xdead_beef);
        assert_eq!(child.read_u32(0x14).unwrap(), 0, "rest of page copied");
        assert_eq!(parent.read_u32(0x10).unwrap(), 0xaaaa_bbbb);
        assert_eq!(parent.resident_pages(), 0);

        // Parent write after fork does not leak into the child.
        parent.write_u32(3 * PAGE_BYTES, 7).unwrap();
        assert_eq!(child.read_u32(3 * PAGE_BYTES).unwrap(), 0x1234_5678);
        assert!(child.shared_fraction() > 0.8);
    }

    #[test]
    fn fork_twice_reuses_frozen_base() {
        let mut parent = PhysMemory::new(4 * PAGE_BYTES);
        parent.write_u8(0, 42).unwrap();
        let a = parent.fork();
        let b = parent.fork();
        assert_eq!(a.read_u8(0).unwrap(), 42);
        assert_eq!(b.read_u8(0).unwrap(), 42);
        // Forking a diverged overlay re-freezes the merged contents.
        parent.write_u8(PAGE_BYTES, 9).unwrap();
        let c = parent.fork();
        assert_eq!(c.read_u8(0).unwrap(), 42);
        assert_eq!(c.read_u8(PAGE_BYTES).unwrap(), 9);
        assert_eq!(a.read_u8(PAGE_BYTES).unwrap(), 0, "older fork unaffected");
    }

    #[test]
    fn forked_reads_cross_residency_boundaries() {
        let mut parent = PhysMemory::new(4 * PAGE_BYTES);
        parent
            .write_slice(PAGE_BYTES - 2, &[0x11, 0x22, 0x33, 0x44])
            .unwrap();
        let mut child = parent.fork();
        // Make page 1 resident in the child, leave page 0 shared.
        child.write_u8(PAGE_BYTES + 100, 1).unwrap();
        // A straddling read mixes base (page 0) and overlay (page 1).
        assert_eq!(child.read_u32(PAGE_BYTES - 2).unwrap(), 0x4433_2211);
        assert_eq!(child.read_u16(PAGE_BYTES - 1).unwrap(), 0x3322);
        let cow = child.read_slice(PAGE_BYTES - 2, 4).unwrap();
        assert_eq!(&*cow, &[0x11, 0x22, 0x33, 0x44]);
        assert!(
            matches!(cow, std::borrow::Cow::Owned(_)),
            "mixed range copies"
        );
        // A straddling write materializes both pages atomically.
        child.write_u32(2 * PAGE_BYTES - 2, 0xffff_ffff).unwrap();
        assert_eq!(child.read_u32(2 * PAGE_BYTES - 2).unwrap(), 0xffff_ffff);
        assert_eq!(parent.read_u32(2 * PAGE_BYTES - 2).unwrap(), 0);
    }

    #[test]
    fn page_view_matches_effective_contents() {
        let mut parent = PhysMemory::new(2 * PAGE_BYTES);
        parent.write_u8(5, 7).unwrap();
        let mut child = parent.fork();
        assert_eq!(child.page(0).unwrap()[5], 7, "shared page via base");
        child.write_u8(5, 8).unwrap();
        assert_eq!(child.page(0).unwrap()[5], 8, "resident page via overlay");
        assert_eq!(parent.page(0).unwrap()[5], 7);
        assert!(child.page(2).is_none());
        // page_tail picks the right source per page.
        assert_eq!(child.page_tail(5).unwrap()[0], 8);
        assert_eq!(parent.page_tail(5).unwrap()[0], 7);
    }

    #[test]
    fn write_tracking_off_by_default_and_reports_nothing() {
        let mut m = PhysMemory::new(4 * PAGE_BYTES);
        m.write_u32(0, 1).unwrap();
        assert!(!m.write_tracking_enabled());
        assert_eq!(m.dirty_page_count(), 0);
        assert_eq!(m.touched_page_count(), 0);
        assert_eq!(m.dirty_page_events(), 0);
        assert!(m.dirty_pages().is_empty());
        assert!(m.take_dirty_pages().is_empty());
        assert!(m.touched_pages().is_empty());
    }

    #[test]
    fn write_tracking_counts_distinct_pages_and_drains() {
        let mut m = PhysMemory::new(4 * PAGE_BYTES);
        m.enable_write_tracking();
        m.write_u8(0, 1).unwrap(); // page 0
        m.write_u8(4, 2).unwrap(); // page 0 again — still one page
        m.write_u16(PAGE_BYTES - 1, 0xabcd).unwrap(); // straddles pages 0-1
        m.write_u32(3 * PAGE_BYTES, 9).unwrap(); // page 3
        assert_eq!(m.dirty_pages(), vec![0, 1, 3]);
        assert_eq!(m.dirty_page_count(), 3);
        assert_eq!(m.touched_page_count(), 3);
        assert_eq!(m.dirty_page_events(), 3);
        // Drain: dirty resets, touched and the monotonic count survive.
        assert_eq!(m.take_dirty_pages(), vec![0, 1, 3]);
        assert_eq!(m.dirty_page_count(), 0);
        assert_eq!(m.touched_page_count(), 3);
        assert_eq!(m.dirty_page_events(), 3);
        // Re-dirtying a touched page counts as a fresh event post-drain.
        m.write_u8(0, 3).unwrap();
        assert_eq!(m.dirty_pages(), vec![0]);
        assert_eq!(m.dirty_page_events(), 4);
        assert_eq!(m.touched_pages(), vec![0, 1, 3]);
        m.disable_write_tracking();
        assert_eq!(m.dirty_page_count(), 0);
    }

    #[test]
    fn write_tracking_covers_slice_and_zero_paths() {
        let mut m = PhysMemory::new(4 * PAGE_BYTES);
        m.enable_write_tracking();
        m.write_slice(PAGE_BYTES - 4, &[1; 8]).unwrap(); // pages 0-1
        m.zero_range(2 * PAGE_BYTES, PAGE_BYTES).unwrap(); // page 2
        m.write_slice(0, &[]).unwrap(); // empty: no pages
        m.zero_range(0, 0).unwrap();
        assert_eq!(m.dirty_pages(), vec![0, 1, 2]);
    }

    #[test]
    fn write_tracking_matches_fork_residency_oracle() {
        // The CoW overlay materializes a page on — and only on — its
        // first write, independently of the tracker: the two mechanisms
        // must name exactly the same pages.
        let mut m = PhysMemory::new(8 * PAGE_BYTES);
        m.write_u32(0x10, 0xdead_beef).unwrap(); // pre-fork write, not counted
        let _child = m.fork();
        m.enable_write_tracking();
        m.write_u8(PAGE_BYTES, 1).unwrap();
        m.write_u32(5 * PAGE_BYTES + 12, 0).unwrap(); // same-value write counts
        m.write_slice(7 * PAGE_BYTES - 2, &[1, 2, 3]).unwrap();
        assert_eq!(m.dirty_pages(), m.resident_page_numbers());
        assert_eq!(m.dirty_pages(), vec![1, 5, 6, 7]);
    }

    #[test]
    fn fork_children_start_with_tracking_off() {
        let mut m = PhysMemory::new(2 * PAGE_BYTES);
        m.enable_write_tracking();
        m.write_u8(0, 1).unwrap();
        let mut child = m.fork();
        assert!(!child.write_tracking_enabled());
        child.write_u8(PAGE_BYTES, 1).unwrap();
        assert_eq!(child.dirty_page_count(), 0);
        // The parent keeps tracking across the fork.
        assert!(m.write_tracking_enabled());
        assert_eq!(m.touched_pages(), vec![0]);
    }
}
