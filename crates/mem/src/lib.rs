#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

//! The VAX memory subsystem: physical memory, the translation buffer
//! (TLB), and the page-table walker.
//!
//! Two behaviors of the base architecture are load-bearing for the paper's
//! VMM design and are modeled exactly:
//!
//! 1. **Protection is checked before the valid bit** (paper §3.2.1). An
//!    invalid PTE that grants access ("null PTE") passes the protection
//!    check and then faults translation-not-valid — the hook for on-demand
//!    shadow page-table fill.
//! 2. **`PTE<M>` maintenance is switchable**: the base architecture sets
//!    the modify bit in hardware on the first write; the modified
//!    architecture instead raises the paper's new *modify fault*
//!    (§4.4.2), letting the VMM propagate modified-bits into the VM's own
//!    page tables.
//!
//! # Example
//!
//! ```
//! use vax_arch::{AccessMode, CostModel, Protection, Pte};
//! use vax_mem::{Mmu, PhysMemory};
//!
//! let mut mem = PhysMemory::new(64 * 1024);
//! let mut mmu = Mmu::new();
//!
//! // Build a one-page system page table at physical 0x1000 mapping
//! // S-space page 0 to physical page 4.
//! mem.write_u32(0x1000, Pte::build(4, Protection::Uw, true, true).raw())?;
//! mmu.set_sbr(0x1000);
//! mmu.set_slr(1);
//! mmu.set_mapen(true);
//!
//! let costs = CostModel::default();
//! let t = mmu.translate(&mut mem, 0x8000_0005.into(), AccessMode::User, false, &costs)?;
//! assert_eq!(t.pa, 4 * 512 + 5);
//! # Ok::<(), vax_mem::MemFault>(())
//! ```

pub mod fault;
pub mod mmu;
pub mod phys;
pub mod tlb;

pub use fault::MemFault;
pub use mmu::{MemCounters, Mmu, MmuState, ProbeOutcome, Translation};
pub use phys::PhysMemory;
pub use tlb::{Tlb, TlbEntry, TlbState};
