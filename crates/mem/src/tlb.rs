//! The translation buffer (TLB).
//!
//! A direct-mapped cache of completed translations. Entries distinguish
//! *process* (P0/P1) from *system* (S) translations because `LDPCTX` and
//! guest context switches invalidate only the process half — the behavior
//! whose cost the paper's §7.2 shadow-table caching attacks.

use vax_arch::va::{Region, VirtAddr, PAGE_SHIFT};
use vax_arch::Protection;

/// One cached translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbEntry {
    /// Tag: the virtual page base address.
    pub tag: u32,
    /// Physical page frame number.
    pub pfn: u32,
    /// Protection code from the PTE.
    pub prot: Protection,
    /// Cached `PTE<M>` state.
    pub modified: bool,
    /// Physical address of the backing PTE (for modify-bit writeback).
    pub pte_pa: u32,
    /// True for P0/P1 translations (flushed on context switch).
    pub process: bool,
}

/// A plain-data image of a [`Tlb`] for snapshot/restore.
///
/// The TLB must round-trip *exactly*: misses charge cycles and the
/// hit/miss counters fold into the CPU counters, so a flush-on-restore
/// would make a restored machine observably diverge from the
/// uninterrupted one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TlbState {
    /// Every slot, in index order (length is the slot count).
    pub slots: Vec<Option<TlbEntry>>,
    /// Lifetime hit count.
    pub hits: u64,
    /// Lifetime miss count.
    pub misses: u64,
}

/// Direct-mapped translation buffer.
///
/// # Example
///
/// ```
/// use vax_mem::{Tlb, TlbEntry};
/// use vax_arch::Protection;
///
/// let mut tlb = Tlb::new(64);
/// tlb.insert(TlbEntry {
///     tag: 0x8000_0200,
///     pfn: 7,
///     prot: Protection::Urkw,
///     modified: false,
///     pte_pa: 0x1000,
///     process: false,
/// });
/// assert!(tlb.lookup(0x8000_0200.into()).is_some());
/// tlb.invalidate_all();
/// assert!(tlb.lookup(0x8000_0200.into()).is_none());
/// ```
#[derive(Debug, Clone)]
pub struct Tlb {
    entries: Vec<Option<TlbEntry>>,
    hits: u64,
    misses: u64,
}

impl Tlb {
    /// Creates a TLB with `slots` entries.
    ///
    /// # Panics
    ///
    /// Panics if `slots` is not a power of two or is zero.
    pub fn new(slots: usize) -> Tlb {
        assert!(slots.is_power_of_two(), "TLB slots must be a power of two");
        Tlb {
            entries: vec![None; slots],
            hits: 0,
            misses: 0,
        }
    }

    fn index(&self, va: VirtAddr) -> usize {
        ((va.raw() >> PAGE_SHIFT) as usize) & (self.entries.len() - 1)
    }

    /// Direct-mapped probe: the slot index for `va`, but only when that
    /// slot currently holds the entry for `va`'s page (index + tag
    /// compare in one place).
    fn slot(&self, va: VirtAddr) -> Option<usize> {
        let idx = self.index(va);
        match self.entries[idx] {
            Some(e) if e.tag == va.page_base().raw() => Some(idx),
            _ => None,
        }
    }

    /// Looks up the translation for the page containing `va`, counting a
    /// hit or miss.
    pub fn lookup(&mut self, va: VirtAddr) -> Option<TlbEntry> {
        match self.slot(va) {
            Some(idx) => {
                self.hits += 1;
                self.entries[idx]
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Peeks without disturbing hit/miss counters (used by PROBE).
    #[inline]
    pub fn peek(&self, va: VirtAddr) -> Option<TlbEntry> {
        self.slot(va).and_then(|idx| self.entries[idx])
    }

    /// Credits `n` hits without performing lookups. The translated
    /// execution tier's inline fast path probes with [`Tlb::peek`]
    /// (counter-free, so a pre-mutation bail leaves no trace) and then,
    /// once a µop is certain to retire, replays here exactly the hit
    /// traffic its interpreter oracle would have counted — keeping the
    /// architectural TLB counters bit-identical across tiers.
    #[inline]
    pub fn record_hits(&mut self, n: u64) {
        self.hits += n;
    }

    /// Inserts (or replaces) the entry for its page.
    pub fn insert(&mut self, entry: TlbEntry) {
        let idx = self.index(VirtAddr::new(entry.tag));
        self.entries[idx] = Some(entry);
    }

    /// Marks the cached entry for `va` modified (after a modify-bit set).
    pub fn set_modified(&mut self, va: VirtAddr) {
        if let Some(idx) = self.slot(va) {
            if let Some(e) = &mut self.entries[idx] {
                e.modified = true;
            }
        }
    }

    /// TBIA: invalidate everything.
    pub fn invalidate_all(&mut self) {
        self.entries.fill(None);
    }

    /// TBIS: invalidate the single page containing `va`.
    pub fn invalidate_single(&mut self, va: VirtAddr) {
        if let Some(idx) = self.slot(va) {
            self.entries[idx] = None;
        }
    }

    /// Invalidates all process-space (P0/P1) entries, as LDPCTX does.
    pub fn invalidate_process(&mut self) {
        for e in &mut self.entries {
            if e.is_some_and(|x| x.process) {
                *e = None;
            }
        }
    }

    /// Lifetime hit count.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lifetime miss count.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Fraction of lookups that hit, in `[0, 1]` (0 before any lookup).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Number of currently valid entries.
    pub fn occupancy(&self) -> usize {
        self.entries.iter().filter(|e| e.is_some()).count()
    }

    /// Captures the complete TLB state (slots and counters).
    pub fn export_state(&self) -> TlbState {
        TlbState {
            slots: self.entries.clone(),
            hits: self.hits,
            misses: self.misses,
        }
    }

    /// Replaces the complete TLB state, including the slot count.
    ///
    /// # Panics
    ///
    /// Panics if the slot count is zero or not a power of two (the
    /// direct-mapped index masking depends on it); snapshot loaders
    /// validate this before calling.
    pub fn import_state(&mut self, state: TlbState) {
        assert!(
            state.slots.len().is_power_of_two(),
            "TLB slots must be a power of two"
        );
        self.entries = state.slots;
        self.hits = state.hits;
        self.misses = state.misses;
    }
}

impl Default for Tlb {
    /// A 256-entry TLB, roughly the size of the VAX 8800's per-half TB.
    fn default() -> Tlb {
        Tlb::new(256)
    }
}

/// Helper: is a region a process region?
pub fn is_process_region(region: Region) -> bool {
    matches!(region, Region::P0 | Region::P1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(tag: u32, process: bool) -> TlbEntry {
        TlbEntry {
            tag,
            pfn: 1,
            prot: Protection::Uw,
            modified: false,
            pte_pa: 0,
            process,
        }
    }

    #[test]
    fn hit_and_miss_counting() {
        let mut tlb = Tlb::new(16);
        assert!(tlb.lookup(VirtAddr::new(0x200)).is_none());
        tlb.insert(entry(0x200, true));
        assert!(tlb.lookup(VirtAddr::new(0x250)).is_some()); // same page
        assert_eq!(tlb.hits(), 1);
        assert_eq!(tlb.misses(), 1);
    }

    #[test]
    fn direct_mapped_conflicts_evict() {
        let mut tlb = Tlb::new(16);
        tlb.insert(entry(0x200, true));
        // Same index (16 slots * 512B span = 8 KiB alias distance).
        tlb.insert(entry(0x200 + 16 * 512, true));
        assert!(tlb.lookup(VirtAddr::new(0x200)).is_none());
        assert!(tlb.lookup(VirtAddr::new(0x200 + 16 * 512)).is_some());
    }

    #[test]
    fn invalidate_single_and_all() {
        let mut tlb = Tlb::new(16);
        tlb.insert(entry(0x200, true));
        tlb.insert(entry(0x400, false));
        tlb.invalidate_single(VirtAddr::new(0x2ff));
        assert!(tlb.peek(VirtAddr::new(0x200)).is_none());
        assert!(tlb.peek(VirtAddr::new(0x400)).is_some());
        tlb.invalidate_all();
        assert_eq!(tlb.occupancy(), 0);
    }

    #[test]
    fn invalidate_process_spares_system_entries() {
        let mut tlb = Tlb::new(16);
        tlb.insert(entry(0x200, true));
        tlb.insert(entry(0x8000_0400, false));
        tlb.invalidate_process();
        assert!(tlb.peek(VirtAddr::new(0x200)).is_none());
        assert!(tlb.peek(VirtAddr::new(0x8000_0400)).is_some());
    }

    #[test]
    fn set_modified_updates_entry() {
        let mut tlb = Tlb::new(16);
        tlb.insert(entry(0x200, true));
        tlb.set_modified(VirtAddr::new(0x210));
        assert!(tlb.peek(VirtAddr::new(0x200)).unwrap().modified);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        Tlb::new(7);
    }

    #[test]
    fn hit_rate_tracks_lookups() {
        let mut tlb = Tlb::new(16);
        assert_eq!(tlb.hit_rate(), 0.0);
        tlb.insert(entry(0x200, true));
        assert!(tlb.lookup(VirtAddr::new(0x210)).is_some());
        assert!(tlb.lookup(VirtAddr::new(0x400)).is_none());
        assert_eq!(tlb.hit_rate(), 0.5);
    }
}
