//! Security-kernel properties (paper §1, §5): isolation between VMs,
//! resource control, and the halt-on-nonexistent-memory policy.
//!
//! Run with: `cargo run --release --example secure_isolation`

use vax_vmm::{Monitor, MonitorConfig, VmConfig, VmState};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut monitor = Monitor::new(MonitorConfig::default());

    // Two VMs, each convinced its memory starts at physical page 0.
    let alice = monitor.create_vm("alice", VmConfig::default());
    let bob = monitor.create_vm("bob", VmConfig::default());

    let write_tag = |tag: u32| {
        format!(
            "
            movl #{tag:#x}, @#0x40     ; stamp guest-physical 0x40
            mfpr #200, r2              ; MEMSIZE
            movl @#0x40, r3            ; read the stamp back
            halt
            "
        )
    };
    for (vm, tag) in [(alice, 0xA11CEu32), (bob, 0xB0Bu32)] {
        let p = vax_asm::assemble_text(&write_tag(tag), 0x1000)?;
        monitor.vm_write_phys(vm, 0x1000, &p.bytes).unwrap();
        monitor.boot_vm(vm, 0x1000);
    }
    monitor.run(10_000_000);

    println!("=== isolation ===");
    println!(
        "alice wrote {:#x} at her physical 0x40; reads back {:#x}",
        0xA11CEu32,
        monitor.vm(alice).regs[3]
    );
    println!(
        "bob   wrote {:#x} at his physical 0x40; reads back {:#x}",
        0xB0Bu32,
        monitor.vm(bob).regs[3]
    );
    assert_eq!(monitor.vm(alice).regs[3], 0xA11CE);
    assert_eq!(monitor.vm(bob).regs[3], 0xB0B);
    println!("same guest-physical address, different real memory: isolated.\n");

    println!("=== resource control ===");
    println!(
        "each VM sees MEMSIZE = {} bytes; it cannot even *name* another",
        monitor.vm(alice).regs[2]
    );
    println!("VM's memory — guest-physical addresses are bounded by MEMSIZE.\n");

    // A hostile guest probing beyond its memory: the paper's policy is
    // to halt the VM (a symptom of a security attack, §5).
    println!("=== the security halt ===");
    let mallory = monitor.create_vm("mallory", VmConfig::default());
    let p = vax_asm::assemble_text(
        "
        probe_loop:
            movl @#0x00F00000, r5      ; far beyond MEMSIZE
            halt
        ",
        0x1000,
    )?;
    monitor.vm_write_phys(mallory, 0x1000, &p.bytes).unwrap();
    monitor.boot_vm(mallory, 0x1000);
    monitor.run(10_000_000);
    println!(
        "mallory touched nonexistent memory; state = {:?}",
        monitor.vm(mallory).state
    );
    println!("VMM log: {:?}", monitor.vm(mallory).vmm_log);
    assert_eq!(monitor.vm(mallory).state, VmState::ConsoleHalt);
    assert_eq!(monitor.vm(mallory).regs[5], 0, "the read never succeeded");

    println!("\nalice and bob are unaffected:");
    println!("  alice: {:?}", monitor.vm(alice).state);
    println!("  bob:   {:?}", monitor.vm(bob).state);
    Ok(())
}
