//! The Popek–Goldberg analysis (paper §2–§3, Table 1): dynamically scan
//! every implemented opcode on the standard VAX from user mode and show
//! which sensitive instructions fail to trap — then repeat the scan
//! inside a VM on the modified VAX to show the repair.
//!
//! Run with: `cargo run --release --example popek_goldberg`

use vax_arch::MachineVariant;
use vax_cpu::{scan_sensitivity, ScanOutcome};

fn main() {
    println!("=== Standard VAX, user mode ===\n");
    println!(
        "{:<10} {:<12} {:<28} observed in user mode",
        "opcode", "privileged", "sensitive data"
    );
    println!("{:-<10} {:-<12} {:-<28} {:-<30}", "", "", "", "");
    let standard = scan_sensitivity(MachineVariant::Standard, false);
    for f in &standard {
        if f.sensitive_data.is_empty() && !f.privileged {
            continue; // innocuous
        }
        let data: Vec<String> = f.sensitive_data.iter().map(|d| d.to_string()).collect();
        println!(
            "{:<10} {:<12} {:<28} {}{}",
            f.opcode.mnemonic(),
            if f.privileged { "yes" } else { "no" },
            data.join(","),
            f.outcome,
            if f.is_violation() && f.opcode.is_table1_instruction() {
                "   <== VIOLATION"
            } else {
                ""
            }
        );
    }

    let violations: Vec<&str> = standard
        .iter()
        .filter(|f| f.is_violation() && f.opcode.is_table1_instruction())
        .map(|f| f.opcode.mnemonic())
        .collect();
    println!(
        "\nPopek-Goldberg violations (paper Table 1): {}\n",
        violations.join(", ")
    );

    println!("=== Modified VAX, inside a VM (virtual kernel mode) ===\n");
    let in_vm = scan_sensitivity(MachineVariant::Modified, true);
    for f in &in_vm {
        if f.sensitive_data.is_empty() && !f.privileged {
            continue;
        }
        println!("{:<10} {}", f.opcode.mnemonic(), f.outcome);
    }

    let fixed = in_vm.iter().all(|f| {
        !f.privileged && f.sensitive_data.is_empty()
            || f.outcome == ScanOutcome::VmEmulationTrap
            || matches!(
                f.opcode.mnemonic(),
                "MOVPSL" | "PROBER" | "PROBEW" // handled in microcode
            )
            || f.opcode.only_pte_m_sensitive() // handled by the modify fault
    });
    println!(
        "\nevery sensitive instruction is now controlled: {}",
        if fixed { "YES" } else { "NO" }
    );
    println!("(MOVPSL and valid-shadow PROBEs are compressed in microcode;");
    println!(" PTE<M> writers are handled by the modify fault; the rest take");
    println!(" the VM-emulation trap to the VMM.)");
}
