//! Quickstart: boot MiniVMS on the bare simulated VAX, then boot the
//! *same image* inside a virtual machine under the security-kernel VMM,
//! and compare.
//!
//! Run with: `cargo run --release --example quickstart`

use vax_os::{build_image, run_bare, run_in_vm, OsConfig, Workload};
use vax_vmm::{MonitorConfig, ShadowConfig, VmConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A MiniVMS guest: four processes running the paper's benchmark mix
    // (interactive editing + transaction processing).
    let config = OsConfig {
        nproc: 4,
        workload: Workload::EditTrans,
        iterations: 200,
        ..OsConfig::default()
    };
    let image = build_image(&config)?;
    println!(
        "built MiniVMS image: {} segments, {} pages of guest memory\n",
        image.segments.len(),
        image.mem_pages
    );

    // 1. Bare hardware: the guest OS runs directly on the modified VAX.
    let bare = run_bare(&image, 8_000_000_000);
    println!("=== bare modified VAX ===");
    println!("completed: {}", bare.completed);
    println!("cycles:    {}", bare.cycles);
    println!("kernel:    {:?}", bare.kernel);
    println!("console:   {:?}\n", String::from_utf8_lossy(&bare.console));

    // 2. The same image as a virtual machine.
    let (vm, monitor, id) = run_in_vm(
        &image,
        MonitorConfig::default(),
        VmConfig {
            shadow: ShadowConfig {
                cache_slots: 8, // the paper's §7.2 optimization
                ..ShadowConfig::default()
            },
            ..VmConfig::default()
        },
        32_000_000_000,
    );
    println!("=== virtual VAX under the VMM ===");
    println!("completed: {}", vm.completed);
    println!("cycles:    {}", vm.cycles);
    println!("kernel:    {:?}", vm.kernel);
    println!("console:   {:?}", String::from_utf8_lossy(&vm.console));
    let stats = monitor.vm_stats(id);
    println!(
        "VMM work:  {} emulation traps ({} CHM, {} REI, {} MTPR-IPL), \
         {} shadow fills, {} kcalls",
        stats.emulation_traps,
        stats.chm,
        stats.rei,
        stats.mtpr_ipl,
        stats.shadow_fills,
        stats.kcalls
    );

    // 3. The paper's two headline checks.
    println!("\n=== comparison ===");
    println!(
        "identical console output: {}",
        if bare.console == vm.console {
            "YES"
        } else {
            "NO"
        }
    );
    println!(
        "identical guest-visible work: {}",
        if bare.kernel.syscalls == vm.kernel.syscalls {
            "YES"
        } else {
            "NO"
        }
    );
    println!(
        "VM performance relative to bare hardware: {:.1}% (paper: 47-48%)",
        100.0 * bare.cycles as f64 / vm.cycles as f64
    );
    Ok(())
}
