//! Consolidation: several different guests — MiniVMS and MiniUltrix —
//! time-share one real machine under the VMM, with the WAIT handshake
//! letting idle guests yield the processor (paper §5).
//!
//! Run with: `cargo run --release --example consolidation`

use vax_os::{boot_in_monitor, build_image, Flavor, OsConfig, Workload};
use vax_vmm::{Monitor, MonitorConfig, VmConfig, VmState};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut monitor = Monitor::new(MonitorConfig {
        mem_bytes: 16 * 1024 * 1024,
        ..MonitorConfig::default()
    });

    // Guest 1: MiniVMS running the editing+transaction mix.
    let vms_img = build_image(&OsConfig {
        flavor: Flavor::MiniVms,
        nproc: 4,
        workload: Workload::EditTrans,
        iterations: 200,
        ..OsConfig::default()
    })?;
    let vms = boot_in_monitor(&mut monitor, &vms_img, VmConfig::default());

    // Guest 2: MiniUltrix (two access modes) running compute jobs.
    let ultrix_img = build_image(&OsConfig {
        flavor: Flavor::MiniUltrix,
        nproc: 2,
        workload: Workload::Compute,
        iterations: 3000,
        ..OsConfig::default()
    })?;
    let ultrix = boot_in_monitor(&mut monitor, &ultrix_img, VmConfig::default());

    // Guest 3: a tiny hand-written guest that idles with WAIT.
    let idler = monitor.create_vm("idler", VmConfig::default());
    let idle_prog = vax_asm::assemble_text(
        "
        top:
            wait                ; tell the VMM we're idle (paper 5)
            incl r2             ; count wakeups
            cmpl r2, #3
            blss top
            halt
        ",
        0x1000,
    )?;
    monitor
        .vm_write_phys(idler, 0x1000, &idle_prog.bytes)
        .unwrap();
    monitor.boot_vm(idler, 0x1000);

    println!("running three guests on one modified VAX...\n");
    let exit = monitor.run(64_000_000_000);
    println!("monitor exit: {exit:?}\n");

    for (name, id) in [("MiniVMS", vms), ("MiniUltrix", ultrix), ("idler", idler)] {
        let state = monitor.vm(id).state;
        let stats = monitor.vm_stats(id);
        println!("--- {name} ---");
        println!("  state:        {state:?}");
        println!("  cycles run:   {}", stats.cycles_run);
        println!(
            "  traps:        {} total ({} CHM, {} REI, {} shadow fills, {} WAITs)",
            stats.emulation_traps, stats.chm, stats.rei, stats.shadow_fills, stats.waits
        );
        let console = monitor.vm_console_output(id);
        if !console.is_empty() {
            println!("  console:      {:?}", String::from_utf8_lossy(&console));
        }
        assert_eq!(state, VmState::ConsoleHalt, "{name} should have halted");
    }

    println!("\nall guests ran to completion on one machine — resource");
    println!("control held: no VM ever executed in real kernel mode.");
    Ok(())
}
