//! Ring compression in action (paper §4.1–§4.3, Figure 3): a guest walks
//! down through all four *virtual* access modes while the real machine
//! only ever uses three, and the one acknowledged imperfection — the
//! executive/kernel memory boundary — is demonstrated live.
//!
//! Run with: `cargo run --release --example ring_compression`

use vax_arch::{AccessMode, Protection, Psl, Pte};
use vax_vmm::{compress_mode, Monitor, MonitorConfig, VmConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Figure 3: the mode mapping\n");
    for m in AccessMode::ALL {
        println!(
            "  virtual {:<11} ->  real {}",
            m.name(),
            compress_mode(m).name()
        );
    }
    println!("  (real kernel mode is reserved to the VMM)\n");

    println!("protection-code compression (kernel access extended to executive):\n");
    for p in Protection::ALL {
        let c = p.ring_compressed();
        if c != p {
            println!("  {:<5} -> {}", p.name(), c.name());
        }
    }

    // A guest that records MOVPSL in every virtual mode: kernel ->
    // executive -> supervisor -> user, each reached by REI, then climbs
    // back with the CHM chain.
    let mut monitor = Monitor::new(MonitorConfig::default());
    let vm = monitor.create_vm("rings", VmConfig::default());
    let src = "
        start:
            movl #0x5000, sp
            mtpr #0x200, #17         ; SCBB
            mtpr #0, #18
            movl #0x5800, r6
            mtpr r6, #1              ; ESP
            movl #0x6000, r6
            mtpr r6, #2              ; SSP
            movl #0x6800, r6
            mtpr r6, #3              ; USP
            movpsl r2                ; virtual kernel
            pushl #0x01400000        ; PSL image: executive
            pushal in_exec
            rei
        in_exec:
            movpsl r3                ; virtual executive
            pushl #0x02800000        ; PSL image: supervisor
            pushal in_super
            rei
        in_super:
            movpsl r4                ; virtual supervisor
            pushl #0x03C00000        ; PSL image: user
            pushal in_user
            rei
        in_user:
            movpsl r5                ; virtual user
            chmk #0                  ; climb straight back to the kernel
        spin:
            brb spin
            .align 4
        back_in_kernel:
            movpsl r6
            halt
        ";
    let p = vax_asm::assemble_text(src, 0x1000)?;
    monitor.vm_write_phys(vm, 0x1000, &p.bytes).unwrap();
    // CHMK vector -> back_in_kernel (the aligned label before the final
    // three bytes: MOVPSL r6 (DC 56) then HALT).
    let handler = 0x1000 + p.bytes.len() as u32 - 3;
    monitor
        .vm_write_phys(vm, 0x200 + 0x40, &handler.to_le_bytes())
        .unwrap();
    monitor.boot_vm(vm, 0x1000);
    monitor.run(10_000_000);

    println!("\nthe VM's own view of its modes (MOVPSL at each stage):\n");
    let guest = monitor.vm(vm);
    for (reg, stage) in [
        (2, "boot"),
        (3, "after REI #1"),
        (4, "after REI #2"),
        (5, "after REI #3"),
        (6, "after CHMK"),
    ] {
        let psl = Psl::from_raw(guest.regs[reg]);
        println!(
            "  {stage:<14} cur={:<11} prv={:<11} (PSL<VM> visible: {})",
            psl.cur_mode().name(),
            psl.prv_mode().name(),
            psl.vm()
        );
    }
    println!("\nfour distinct virtual modes observed; the real machine used");
    println!("only executive, supervisor, and user the whole time.\n");

    // The acknowledged leak (paper §4.3.1): compress a kernel-only
    // protection code and check who can reach it.
    let kw = Protection::Kw.ring_compressed();
    println!(
        "the one imperfection: a VM kernel-only page ({} after",
        Protection::Kw
    );
    println!("compression -> {kw}) is accessible from virtual executive mode:");
    for m in AccessMode::ALL {
        println!(
            "  virtual {:<11} read: {:<7} write: {}",
            m.name(),
            kw.allows_read(compress_mode(m)),
            kw.allows_write(compress_mode(m)),
        );
    }
    let _ = Pte::NULL; // the other half of the §4.3 machinery
    Ok(())
}
