//! `vaxrun` — assemble a VAX assembly file and run it on the simulated
//! machine, bare or inside a virtual machine under the VMM.
//!
//! ```console
//! $ vaxrun program.s                 # bare modified VAX, kernel mode
//! $ vaxrun --vm program.s           # as a virtual machine guest
//! $ vaxrun --list program.s         # print the listing, don't run
//! $ vaxrun --base 2000 program.s    # load address (hex, default 1000)
//! $ vaxrun --trace program.s        # dump the last PCs on exit
//! $ vaxrun --exec-tier trans p.s    # translated superblocks for hot code
//! $ vaxrun --vm --trace program.s   # print a VM-exit cost breakdown
//! $ vaxrun --metrics-out m.json ... # write counters/histograms (JSON,
//!                                   # or Prometheus text for .prom)
//! $ vaxrun --vm --trace-out t.json  # write a Chrome trace of VM exits
//! $ vaxrun --fleet 8 --jobs 4 p.s   # 8 monitors across 4 host threads
//! $ vaxrun --fleet 8@2 ...          # ... with 2 VMs per monitor
//! $ vaxrun --vm --max-cycles 50000 --snapshot-out s.vaxsnap p.s
//!                                   # run part way, save the monitor
//! $ vaxrun --restore s.vaxsnap      # resume it (no source needed);
//!                                   # bit-identical to never stopping
//! $ vaxrun --vm --fork 4 p.s        # run, then fork 4 copy-on-write
//!                                   # children and resume each
//! ```
//!
//! Fleet mode (`--fleet M[@V]`) builds M independent monitors, each
//! with V VMs booted on the same program, and drives them with the
//! fleet executor — serially for `--jobs 1` (the default), across a
//! bounded thread pool otherwise. Per-monitor results are bit-identical
//! either way; `--metrics-out` then reports fleet-wide totals plus the
//! per-monitor breakdown.
//!
//! The program runs in kernel mode with translation off (addresses are
//! physical), console output goes through TXDB, and execution ends at
//! HALT or after `--max-cycles`.

use std::process::ExitCode;
use vax_arch::{MachineVariant, Psl};
use vax_cpu::{ExecTier, HaltReason, Machine, StepEvent, SuperblockProfile};
use vax_vmm::{
    chrome_trace, chrome_trace_with_events, Fleet, Metrics, Monitor, MonitorConfig, Prof, ProfTier,
    RunExit, VmConfig, VmState, DEFAULT_SAMPLE_INTERVAL,
};

/// Upper bound on `--trace-depth`: 16M records is ~512 MiB of ring, far
/// beyond anything useful but a guard against typo'd byte counts.
const MAX_TRACE_DEPTH: usize = 1 << 24;

struct Options {
    path: String,
    vm: bool,
    list: bool,
    trace: bool,
    base: u32,
    max_cycles: u64,
    metrics_out: Option<String>,
    trace_out: Option<String>,
    /// (monitors, vms per monitor) when `--fleet` is given.
    fleet: Option<(usize, usize)>,
    jobs: usize,
    snapshot_out: Option<String>,
    restore: Option<String>,
    /// Comma-separated base,delta,... chain for `--restore-chain`.
    restore_chain: Option<String>,
    /// Write an incremental delta (parent = last restored image) here.
    snapshot_delta: Option<String>,
    /// Arm dirty-page write tracking before the run.
    track_dirty: bool,
    fork: usize,
    exec_tier: ExecTier,
    profile: bool,
    profile_out: Option<String>,
    trace_depth: usize,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: vaxrun [--vm] [--list] [--trace] [--base HEX] [--max-cycles N] \
         [--exec-tier interp|cache|trans] [--metrics-out FILE] [--trace-out FILE] \
         [--trace-depth N] [--profile] [--profile-out FILE] \
         [--fleet M[@V]] [--jobs N] [--snapshot-out FILE] [--track-dirty] [--fork K] \
         FILE.s\n       \
         vaxrun --restore FILE [--max-cycles N] [--snapshot-out FILE] [--fork K] \
         [--metrics-out FILE]\n       \
         vaxrun --restore-chain BASE,D1,... [--track-dirty] [--snapshot-delta FILE] \
         [--max-cycles N]\n\n       --track-dirty arms dirty-page write tracking before \
         the run, so a\n       --snapshot-out image can anchor an incremental chain: \
         restore it (or a\n       chain) with --restore-chain and write the next link \
         with\n       --snapshot-delta — O(dirty pages), digest-linked to its \
         parent.\n\n       --exec-tier selects how guest code executes: \
         'interp' (bytewise decode every\n       instruction), 'cache' (PA-keyed decode \
         cache, the default), or 'trans'\n       (decode cache + translated superblocks \
         for hot straight-line code). All\n       tiers produce bit-identical \
         architectural state, cycles, and counters.\n\n       --profile samples the \
         guest PC on the simulated clock and prints a\n       cycle-attributed profile \
         on exit (per-tier split, hot pages, hot\n       superblocks, working set); \
         --profile-out additionally writes a\n       collapsed-stack file for flamegraph \
         tools and implies --profile.\n       Profiling never perturbs the guest: \
         architectural state, cycles, and\n       counters are bit-identical with it on \
         or off.\n\n       --trace-depth sets the VM-exit trace ring capacity in records \
         (default\n       65536, max 16777216); deeper rings keep more history for \
         --trace-out."
    );
    ExitCode::from(2)
}

/// Parses a `--fleet` spec: `M` monitors, optionally `M@V` for V VMs
/// per monitor.
fn parse_fleet_spec(spec: &str) -> Option<(usize, usize)> {
    let (m, v) = match spec.split_once('@') {
        Some((m, v)) => (m, v.parse().ok()?),
        None => (spec, 1usize),
    };
    let m = m.parse().ok()?;
    (m >= 1 && v >= 1).then_some((m, v))
}

fn parse_args() -> Result<Options, ExitCode> {
    let mut opts = Options {
        path: String::new(),
        vm: false,
        list: false,
        trace: false,
        base: 0x1000,
        max_cycles: 1_000_000_000,
        metrics_out: None,
        trace_out: None,
        fleet: None,
        jobs: 1,
        snapshot_out: None,
        restore: None,
        restore_chain: None,
        snapshot_delta: None,
        track_dirty: false,
        fork: 0,
        exec_tier: ExecTier::default(),
        profile: false,
        profile_out: None,
        trace_depth: 65536,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--vm" => opts.vm = true,
            "--exec-tier" => {
                let v = args.next().ok_or_else(usage)?;
                opts.exec_tier = ExecTier::from_name(&v).ok_or_else(|| {
                    eprintln!("vaxrun: unknown exec tier {v:?} (interp, cache, trans)");
                    usage()
                })?;
            }
            "--fleet" => {
                let v = args.next().ok_or_else(usage)?;
                opts.fleet = Some(parse_fleet_spec(&v).ok_or_else(usage)?);
            }
            "--jobs" => {
                let v = args.next().ok_or_else(usage)?;
                opts.jobs = v.parse().map_err(|_| usage())?;
                if opts.jobs == 0 {
                    return Err(usage());
                }
            }
            "--list" => opts.list = true,
            "--trace" => opts.trace = true,
            "--base" => {
                let v = args.next().ok_or_else(usage)?;
                opts.base = u32::from_str_radix(&v, 16).map_err(|_| usage())?;
            }
            "--max-cycles" => {
                let v = args.next().ok_or_else(usage)?;
                opts.max_cycles = v.parse().map_err(|_| usage())?;
            }
            "--metrics-out" => opts.metrics_out = Some(args.next().ok_or_else(usage)?),
            "--trace-out" => opts.trace_out = Some(args.next().ok_or_else(usage)?),
            "--trace-depth" => {
                let v = args.next().ok_or_else(usage)?;
                opts.trace_depth = v.parse().map_err(|_| usage())?;
                if opts.trace_depth == 0 || opts.trace_depth > MAX_TRACE_DEPTH {
                    eprintln!("vaxrun: --trace-depth must be 1..={MAX_TRACE_DEPTH}");
                    return Err(usage());
                }
            }
            "--profile" => opts.profile = true,
            "--profile-out" => {
                opts.profile_out = Some(args.next().ok_or_else(usage)?);
                opts.profile = true;
            }
            "--snapshot-out" => opts.snapshot_out = Some(args.next().ok_or_else(usage)?),
            "--restore" => opts.restore = Some(args.next().ok_or_else(usage)?),
            "--restore-chain" => opts.restore_chain = Some(args.next().ok_or_else(usage)?),
            "--snapshot-delta" => opts.snapshot_delta = Some(args.next().ok_or_else(usage)?),
            "--track-dirty" => opts.track_dirty = true,
            "--fork" => {
                let v = args.next().ok_or_else(usage)?;
                opts.fork = v.parse().map_err(|_| usage())?;
                if opts.fork == 0 {
                    return Err(usage());
                }
            }
            "--help" | "-h" => return Err(usage()),
            f if !f.starts_with('-') && opts.path.is_empty() => opts.path = f.to_string(),
            _ => return Err(usage()),
        }
    }
    if opts.path.is_empty() && opts.restore.is_none() && opts.restore_chain.is_none() {
        return Err(usage());
    }
    if opts.restore.is_some() && opts.restore_chain.is_some() {
        eprintln!("vaxrun: --restore and --restore-chain are mutually exclusive");
        return Err(usage());
    }
    if opts.snapshot_delta.is_some() && opts.restore.is_none() && opts.restore_chain.is_none() {
        eprintln!("vaxrun: --snapshot-delta needs a parent image: use --restore/--restore-chain");
        return Err(usage());
    }
    Ok(opts)
}

/// Writes a metrics snapshot as Prometheus text when the path ends in
/// `.prom`, JSON otherwise.
fn write_metrics(path: &str, metrics: &Metrics) -> std::io::Result<()> {
    let body = if path.ends_with(".prom") {
        metrics.to_prometheus()
    } else {
        metrics.to_json()
    };
    std::fs::write(path, body)
}

/// Post-run snapshot duties shared by `--vm` and `--restore` modes:
/// `--snapshot-out` serializes the quiescent monitor, `--fork K` forks
/// it into K copy-on-write children and resumes each under the same
/// cycle budget. Returns (snapshot bytes written, forks made) for the
/// metrics registry.
fn snapshot_duties(monitor: &mut Monitor, opts: &Options) -> Result<(u64, u64), ExitCode> {
    let mut snap_bytes = 0u64;
    if let Some(path) = &opts.snapshot_out {
        // On a tracked monitor the full snapshot anchors a delta chain,
        // so it drains the dirty set — the next --snapshot-delta ships
        // only pages written after this image.
        let result = if monitor.dirty_tracking_enabled() {
            vax_snap::snapshot_chain_base(monitor)
        } else {
            vax_snap::snapshot_monitor(monitor)
        };
        match result {
            Ok(bytes) => {
                snap_bytes = bytes.len() as u64;
                if let Err(e) = std::fs::write(path, &bytes) {
                    eprintln!("vaxrun: {path}: {e}");
                    return Err(ExitCode::FAILURE);
                }
                eprintln!("-- vaxrun: snapshot: {snap_bytes} bytes -> {path}");
            }
            Err(e) => {
                eprintln!("vaxrun: --snapshot-out: {e}");
                return Err(ExitCode::FAILURE);
            }
        }
    }
    if opts.fork > 0 {
        let mut children = match vax_snap::fork_monitor(monitor, opts.fork) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("vaxrun: --fork: {e}");
                return Err(ExitCode::FAILURE);
            }
        };
        for (i, child) in children.iter_mut().enumerate() {
            let exit = child.run(opts.max_cycles);
            eprintln!(
                "-- fork {i}: {exit:?}, {:.1}% of memory still shared with the parent",
                100.0 * child.machine().mem().shared_fraction(),
            );
        }
    }
    Ok((snap_bytes, opts.fork as u64))
}

/// `--restore`/`--restore-chain` mode: reconstruct a monitor from a
/// snapshot file (plus any incremental deltas) and resume it. No
/// assembly source is involved — the guests, their memory, and the
/// machine clock all come from the images. With `--snapshot-delta`,
/// the run's dirty pages are written as the chain's next link (parent
/// = the last image restored here).
fn run_restored(opts: &Options, paths: &[String]) -> ExitCode {
    let mut images = Vec::new();
    for path in paths {
        match std::fs::read(path) {
            Ok(b) => images.push(b),
            Err(e) => {
                eprintln!("vaxrun: {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let (base, deltas) = match images.split_first() {
        Some(v) => v,
        None => {
            eprintln!("vaxrun: --restore-chain needs at least a base image");
            return ExitCode::FAILURE;
        }
    };
    let mut monitor = match vax_snap::restore_chain(base, deltas) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("vaxrun: {}: {e}", paths.join(","));
            return ExitCode::FAILURE;
        }
    };
    // The digest the next delta must name as its parent: the last image
    // of the chain as restored here.
    let parent_digest = vax_snap::snapshot_digest(images.last().unwrap_or(&Vec::new()));
    if opts.track_dirty {
        monitor.enable_dirty_tracking();
    }
    let exit = monitor.run(opts.max_cycles);
    let mut all_halted = exit == RunExit::AllHalted;
    let ids: Vec<_> = monitor.vm_ids().collect();
    for id in ids {
        let out = monitor.vm_console_output(id);
        print!("{}", String::from_utf8_lossy(&out));
        let guest = monitor.vm(id);
        all_halted &= guest.state == VmState::ConsoleHalt;
        eprintln!(
            "-- vaxrun: {}: {exit:?}, state {:?}",
            guest.name, guest.state
        );
        if let Some(reason) = &guest.halt_reason {
            eprintln!("-- vaxrun: {}: halt reason: {reason}", guest.name);
        }
    }
    let mut delta_bytes = 0u64;
    if let Some(dpath) = &opts.snapshot_delta {
        match vax_snap::snapshot_delta(&mut monitor, parent_digest) {
            Ok(bytes) => {
                delta_bytes = bytes.len() as u64;
                if let Err(e) = std::fs::write(dpath, &bytes) {
                    eprintln!("vaxrun: {dpath}: {e}");
                    return ExitCode::FAILURE;
                }
                eprintln!("-- vaxrun: delta snapshot: {delta_bytes} bytes -> {dpath}");
            }
            Err(e) => {
                eprintln!("vaxrun: --snapshot-delta: {e} (was the base taken with --track-dirty?)");
                return ExitCode::FAILURE;
            }
        }
    }
    let (snap_bytes, forks) = match snapshot_duties(&mut monitor, opts) {
        Ok(v) => v,
        Err(code) => return code,
    };
    if let Some(mpath) = &opts.metrics_out {
        let mut metrics = monitor.metrics();
        metrics
            .bump("snapshot_bytes_written", snap_bytes)
            .bump("snapshot_delta_bytes_written", delta_bytes)
            .bump("snapshot_forks", forks);
        if let Err(e) = write_metrics(mpath, &metrics) {
            eprintln!("vaxrun: {mpath}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if all_halted {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Prints the per-cause exit-cost table from a metrics registry (works
/// for one monitor's registry or a fleet-wide merge).
fn print_exit_costs(metrics: &Metrics) {
    for cause in vax_vmm::ExitCause::ALL {
        if let Some(h) = metrics.get_histogram(&format!("exit_cost_{}", cause.name())) {
            if h.count() > 0 {
                eprintln!(
                    "--   {:<18} {:>8}  mean {:>7.1}  p99 {:>6}  max {:>6} cycles",
                    cause.name(),
                    h.count(),
                    h.mean(),
                    h.quantile(0.99),
                    h.max()
                );
            }
        }
    }
}

/// Prints the cycle-attributed profile for one machine: the per-tier
/// attribution split, the hottest guest pages, the hot-superblock
/// table, and working-set telemetry. Shared by `--vm` and bare modes.
fn print_profile(prof: &Prof, blocks: &[SuperblockProfile], mem: &vax_mem::PhysMemory) {
    let total = prof.attributed_total().max(1);
    eprintln!(
        "-- profile: {} samples (interval {} cycles), {} cycles attributed",
        prof.samples(),
        prof.interval(),
        prof.attributed_total()
    );
    for tier in ProfTier::ALL {
        let cyc = prof.attributed(tier);
        if cyc == 0 && prof.retired(tier) == 0 {
            continue;
        }
        eprintln!(
            "--   tier {:<7} {:>12} instrs  {:>12} cycles ({:>5.1}%)",
            tier.name(),
            prof.retired(tier),
            cyc,
            100.0 * cyc as f64 / total as f64
        );
    }
    if prof.overflow_cycles() > 0 {
        eprintln!(
            "--   (bucket table full: {} cycles in overflow)",
            prof.overflow_cycles()
        );
    }
    let pages = prof.page_buckets();
    if !pages.is_empty() {
        eprintln!("-- hot pages:");
        for &(page, cyc) in pages.iter().take(8) {
            eprintln!(
                "--   page {:#07x} ({:#010x}..)  {:>12} cycles ({:>5.1}%)",
                page,
                page << vax_arch::PAGE_SHIFT,
                cyc,
                100.0 * cyc as f64 / total as f64
            );
        }
    }
    if !blocks.is_empty() {
        eprintln!(
            "-- hot superblocks (top {} of {}):",
            blocks.len().min(8),
            blocks.len()
        );
        eprintln!(
            "--   {:<10} {:>4} {:>5} {:>9} {:>11} {:>12} {:>6} {:>6} {:>6}",
            "entry", "len", "heat", "execs", "uops", "cycles", "irq", "bail", "inval"
        );
        for b in blocks.iter().take(8) {
            eprintln!(
                "--   {:#010x} {:>4} {:>5} {:>9} {:>11} {:>12} {:>6} {:>6} {:>6}",
                b.entry_pa,
                b.len,
                b.heat,
                b.executions,
                b.uops_retired,
                b.cycles_retired,
                b.side_exit_interrupt,
                b.side_exit_bail,
                b.invalidations
            );
        }
    }
    if mem.write_tracking_enabled() {
        eprintln!(
            "-- working set: {} pages touched, {} dirty, {} dirty-page events",
            mem.touched_page_count(),
            mem.dirty_page_count(),
            mem.dirty_page_events()
        );
        let dr = prof.dirty_rate();
        if dr.count() > 0 {
            eprintln!(
                "--   dirty rate: mean {:.2} p99 {} max {} new dirty pages / interval",
                dr.mean(),
                dr.quantile(0.99),
                dr.max()
            );
        }
    }
}

/// Writes a collapsed-stack profile (`--profile-out`); errors are
/// reported and turned into a failure exit code by the caller.
fn write_profile_out(path: &str, body: &str) -> Result<(), ExitCode> {
    if let Err(e) = std::fs::write(path, body) {
        eprintln!("vaxrun: {path}: {e}");
        return Err(ExitCode::FAILURE);
    }
    eprintln!("-- vaxrun: collapsed-stack profile -> {path}");
    Ok(())
}

/// Fleet mode: `monitors` independent Monitors, each booting
/// `vms_per_monitor` VMs on the same program, driven by the fleet
/// executor.
fn run_fleet(
    opts: &Options,
    program: &vax_asm::Program,
    monitors: usize,
    vms_per_monitor: usize,
) -> ExitCode {
    let obs = opts.trace || opts.metrics_out.is_some();
    let mut fleet = Fleet::new();
    for m in 0..monitors {
        let mut monitor = Monitor::new(MonitorConfig::default());
        if obs {
            monitor.enable_obs(opts.trace_depth);
        }
        for v in 0..vms_per_monitor {
            let vm = monitor.create_vm(&format!("m{m}.v{v}"), VmConfig::default());
            if let Err(e) = monitor.vm_write_phys(vm, program.base, &program.bytes) {
                eprintln!("vaxrun: loading program: {e}");
                return ExitCode::FAILURE;
            }
            monitor.boot_vm(vm, program.base);
        }
        fleet.push(monitor);
    }
    // One call fans the tier out to every member, so parallel workers
    // all run the same way.
    fleet.set_exec_tier(opts.exec_tier);
    if opts.profile {
        fleet.set_profiling(Some(DEFAULT_SAMPLE_INTERVAL));
    }
    let report = if opts.jobs > 1 {
        fleet.run_parallel(opts.max_cycles, opts.jobs)
    } else {
        fleet.run_serial(opts.max_cycles)
    };
    let mut all_halted = true;
    for (i, o) in report.outcomes.iter().enumerate() {
        all_halted &=
            o.exit == RunExit::AllHalted && o.vms.iter().all(|v| v.state == VmState::ConsoleHalt);
        eprintln!(
            "-- monitor {i}: {:?}, {} cycles, {} instructions, {} vm exits",
            o.exit,
            o.cycles,
            o.counters.instructions,
            o.counters.vm_exits()
        );
        for v in &o.vms {
            if let Some(reason) = &v.halt_reason {
                eprintln!("--   {}: halt reason: {reason}", v.name);
            }
        }
    }
    eprintln!(
        "-- fleet: {} monitors x {} vms, {} jobs, {:.3}s wall, {:.0} aggregate instrs/sec",
        monitors,
        vms_per_monitor,
        report.jobs,
        report.wall.as_secs_f64(),
        report.instrs_per_sec()
    );
    if opts.trace {
        eprintln!("-- fleet-wide vm exit costs:");
        print_exit_costs(&fleet.fleet_metrics());
    }
    if opts.profile {
        for i in 0..fleet.len() {
            let monitor = fleet.monitor(i);
            if let Some(prof) = monitor.prof() {
                eprintln!("-- monitor {i} profile:");
                print_profile(
                    prof,
                    &monitor.machine().superblock_profiles(),
                    monitor.machine().mem(),
                );
            }
        }
    }
    if let Some(path) = &opts.profile_out {
        // One flamegraph across the fleet: members' collapsed stacks
        // concatenate cleanly because each line carries full context.
        let mut body = String::new();
        for i in 0..fleet.len() {
            if let Some(prof) = fleet.monitor(i).prof() {
                body.push_str(&prof.collapsed_stack());
            }
        }
        if let Err(code) = write_profile_out(path, &body) {
            return code;
        }
    }
    if let Some(path) = &opts.metrics_out {
        let body = if path.ends_with(".prom") {
            fleet.fleet_metrics().to_prometheus()
        } else {
            let per: Vec<String> = fleet
                .per_monitor_metrics()
                .iter()
                .map(|m| m.to_json().trim_end().to_string())
                .collect();
            format!(
                "{{\n\"fleet\": {},\n\"monitors\": [\n{}\n]\n}}\n",
                fleet.fleet_metrics().to_json().trim_end(),
                per.join(",\n")
            )
        };
        if let Err(e) = std::fs::write(path, body) {
            eprintln!("vaxrun: {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if opts.trace_out.is_some() {
        eprintln!("vaxrun: --trace-out is per-monitor; not written in fleet mode");
    }
    if opts.snapshot_out.is_some() || opts.fork > 0 {
        eprintln!("vaxrun: --snapshot-out/--fork are per-monitor; not applied in fleet mode");
    }
    if all_halted {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(code) => return code,
    };
    if let Some(path) = &opts.restore {
        let paths = vec![path.clone()];
        return run_restored(&opts, &paths);
    }
    if let Some(chain) = &opts.restore_chain {
        let paths: Vec<String> = chain.split(',').map(str::to_string).collect();
        return run_restored(&opts, &paths);
    }
    let source = match std::fs::read_to_string(&opts.path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("vaxrun: {}: {e}", opts.path);
            return ExitCode::FAILURE;
        }
    };
    let (program, symbols) = match vax_asm::assemble_text_with_symbols(&source, opts.base) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("vaxrun: {}: {e}", opts.path);
            return ExitCode::FAILURE;
        }
    };
    if opts.list {
        print!(
            "{}",
            vax_asm::listing(&program.bytes, program.base, &symbols)
        );
        return ExitCode::SUCCESS;
    }

    if let Some((monitors, vms_per_monitor)) = opts.fleet {
        return run_fleet(&opts, &program, monitors, vms_per_monitor);
    }

    if opts.vm {
        let mut monitor = Monitor::new(MonitorConfig::default());
        monitor.set_exec_tier(opts.exec_tier);
        if opts.trace || opts.trace_out.is_some() || opts.metrics_out.is_some() {
            monitor.enable_obs(opts.trace_depth);
        }
        if opts.profile {
            monitor.enable_profiling(DEFAULT_SAMPLE_INTERVAL);
        }
        if opts.track_dirty {
            // Armed before the guest loads, so a --snapshot-out base
            // can anchor an incremental --snapshot-delta chain.
            monitor.enable_dirty_tracking();
        }
        let vm = monitor.create_vm("vaxrun", VmConfig::default());
        if let Err(e) = monitor.vm_write_phys(vm, program.base, &program.bytes) {
            eprintln!("vaxrun: loading program: {e}");
            return ExitCode::FAILURE;
        }
        monitor.boot_vm(vm, program.base);
        let exit = monitor.run(opts.max_cycles);
        let out = monitor.vm_console_output(vm);
        print!("{}", String::from_utf8_lossy(&out));
        let guest = monitor.vm(vm);
        eprintln!("-- vaxrun: {exit:?}, state {:?}", guest.state);
        if let Some(reason) = &guest.halt_reason {
            eprintln!("-- vaxrun: halt reason: {reason}");
        }
        for (i, chunk) in guest.regs.chunks(4).enumerate() {
            eprintln!(
                "-- R{:<2} {:08X} {:08X} {:08X} {:08X}",
                i * 4,
                chunk[0],
                chunk[1],
                chunk[2],
                chunk[3]
            );
        }
        for l in &guest.vmm_log {
            eprintln!("-- vmm: {l}");
        }
        let guest_state = guest.state;
        if opts.trace {
            if let Some(obs) = monitor.obs() {
                eprintln!("-- vm exits ({} total):", obs.total_exits());
                for cause in vax_vmm::ExitCause::ALL {
                    let h = obs.histogram(cause);
                    if h.count() > 0 {
                        eprintln!(
                            "--   {:<18} {:>8}  mean {:>7.1}  p99 {:>6}  max {:>6} cycles",
                            cause.name(),
                            h.count(),
                            h.mean(),
                            h.quantile(0.99),
                            h.max()
                        );
                    }
                }
            }
        }
        if let Some(prof) = monitor.prof() {
            print_profile(
                prof,
                &monitor.machine().superblock_profiles(),
                monitor.machine().mem(),
            );
        }
        if let Some(path) = &opts.profile_out {
            let body = monitor
                .prof()
                .map(Prof::collapsed_stack)
                .unwrap_or_default();
            if let Err(code) = write_profile_out(path, &body) {
                return code;
            }
        }
        let (snap_bytes, forks) = match snapshot_duties(&mut monitor, &opts) {
            Ok(v) => v,
            Err(code) => return code,
        };
        if let Some(path) = &opts.metrics_out {
            let mut metrics = monitor.metrics();
            if snap_bytes > 0 || forks > 0 {
                metrics
                    .bump("snapshot_bytes_written", snap_bytes)
                    .bump("snapshot_forks", forks);
            }
            if let Err(e) = write_metrics(path, &metrics) {
                eprintln!("vaxrun: {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
        if let Some(path) = &opts.trace_out {
            // With profiling on, superblock lifecycle events ride along
            // as instant events on their own trace row.
            let trace = monitor
                .obs()
                .map(|o| match monitor.prof() {
                    Some(p) => chrome_trace_with_events(o.trace().iter(), p.events()),
                    None => chrome_trace(o.trace().iter()),
                })
                .unwrap_or_default();
            if let Err(e) = std::fs::write(path, trace) {
                eprintln!("vaxrun: {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
        return if exit == RunExit::AllHalted && guest_state == VmState::ConsoleHalt {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    if opts.snapshot_out.is_some() || opts.fork > 0 {
        eprintln!("vaxrun: --snapshot-out/--fork need a monitor; use --vm");
        return ExitCode::FAILURE;
    }
    let mut m = Machine::new(MachineVariant::Modified, 2 * 1024 * 1024);
    m.set_exec_tier(opts.exec_tier);
    if opts.trace {
        m.enable_trace(16);
    }
    if opts.profile {
        m.enable_profiling(DEFAULT_SAMPLE_INTERVAL);
    }
    if m.mem_mut()
        .write_slice(program.base, &program.bytes)
        .is_err()
    {
        eprintln!("vaxrun: program does not fit at {:#x}", program.base);
        return ExitCode::FAILURE;
    }
    let mut psl = Psl::new();
    psl.set_ipl(31);
    m.set_psl(psl);
    m.set_reg(14, 0x8000);
    m.set_pc(program.base);
    let mut status = ExitCode::FAILURE;
    while m.cycles() < opts.max_cycles {
        match m.step() {
            StepEvent::Ok => {}
            StepEvent::Halted(HaltReason::HaltInstruction) => {
                status = ExitCode::SUCCESS;
                break;
            }
            other => {
                eprintln!("-- vaxrun: stopped: {other:?} at pc={:#010x}", m.pc());
                break;
            }
        }
    }
    print!("{}", String::from_utf8_lossy(&m.console_take_output()));
    eprintln!(
        "-- vaxrun: {} cycles, {} instructions",
        m.cycles(),
        m.counters().instructions
    );
    if m.exec_tier() == ExecTier::Trans {
        let ts = m.trans_stats();
        eprintln!(
            "-- trans: {} superblocks executed ({} translated), {} chain follows, \
             {} links severed",
            ts.blocks_executed, ts.blocks_translated, ts.chain_hits, ts.chain_links_severed
        );
        eprintln!(
            "-- trans side exits: {} interrupt, {} bail ({} tlb-miss, {} prot, \
             {} modify, {} page-cross, {} io), {} smc",
            ts.side_exit_interrupt,
            ts.side_exit_bail,
            ts.side_exit_tlb_miss,
            ts.side_exit_prot,
            ts.side_exit_modify,
            ts.side_exit_page_cross,
            ts.side_exit_io,
            ts.side_exit_smc
        );
    }
    for (i, r) in (0..16)
        .map(|i| (i, m.reg(i)))
        .collect::<Vec<_>>()
        .chunks(4)
        .enumerate()
    {
        let row: Vec<String> = r.iter().map(|(_, v)| format!("{v:08X}")).collect();
        eprintln!("-- R{:<2} {}", i * 4, row.join(" "));
    }
    if opts.trace {
        let pcs: Vec<String> = m.recent_pcs().iter().map(|p| format!("{p:#x}")).collect();
        eprintln!("-- trace: {}", pcs.join(" "));
    }
    if let Some(prof) = m.prof() {
        print_profile(prof, &m.superblock_profiles(), m.mem());
    }
    if let Some(path) = &opts.profile_out {
        let body = m.prof().map(Prof::collapsed_stack).unwrap_or_default();
        if let Err(code) = write_profile_out(path, &body) {
            return code;
        }
    }
    if let Some(path) = &opts.metrics_out {
        let c = m.counters();
        let dc = m.decode_cache_stats();
        let mut metrics = Metrics::new();
        for (name, v) in c.named() {
            metrics.counter(name, v);
        }
        metrics.counter("cycles", m.cycles());
        metrics.counter("decode_cache_hits", dc.hits);
        metrics.counter("decode_cache_misses", dc.misses);
        metrics.counter("decode_cache_bytewise_fallbacks", dc.bytewise_fallbacks);
        metrics.counter("decode_cache_invalidations", dc.invalidations);
        metrics.gauge("decode_cache_hit_rate", dc.hit_rate());
        let ts = m.trans_stats();
        metrics.counter("trans_blocks_translated", ts.blocks_translated);
        metrics.counter("trans_blocks_executed", ts.blocks_executed);
        metrics.counter("trans_uops_executed", ts.uops_executed);
        metrics.counter("trans_side_exit_interrupt", ts.side_exit_interrupt);
        metrics.counter("trans_side_exit_bail", ts.side_exit_bail);
        metrics.counter("trans_side_exit_smc", ts.side_exit_smc);
        metrics.counter("trans_side_exit_tlb_miss", ts.side_exit_tlb_miss);
        metrics.counter("trans_side_exit_prot", ts.side_exit_prot);
        metrics.counter("trans_side_exit_modify", ts.side_exit_modify);
        metrics.counter("trans_side_exit_page_cross", ts.side_exit_page_cross);
        metrics.counter("trans_side_exit_io", ts.side_exit_io);
        metrics.counter("trans_chain_hits", ts.chain_hits);
        metrics.counter("trans_chain_links_severed", ts.chain_links_severed);
        metrics.counter("trans_invalidations", ts.invalidations);
        metrics.gauge("tlb_hit_rate", c.tlb_hit_rate_opt());
        if let Some(p) = m.prof() {
            metrics
                .counter("profile_samples", p.samples())
                .counter("profile_overflow_cycles", p.overflow_cycles());
            for tier in ProfTier::ALL {
                metrics
                    .counter(
                        &format!("profile_instructions_{}", tier.name()),
                        p.retired(tier),
                    )
                    .counter(
                        &format!("profile_cycles_{}", tier.name()),
                        p.attributed(tier),
                    );
            }
        }
        if let Err(e) = write_metrics(path, &metrics) {
            eprintln!("vaxrun: {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    status
}
