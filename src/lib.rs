#![warn(missing_docs)]
//! Umbrella crate re-exporting the full VAX virtualization stack.
pub use vax_arch as arch;
pub use vax_asm as asm;
pub use vax_cpu as cpu;
pub use vax_dev as dev;
pub use vax_mem as mem;
pub use vax_os as os;
pub use vax_vmm as vmm;
