//! Property-based equivalence: random innocuous programs must compute
//! exactly the same register file on a standard VAX, a bare modified
//! VAX, and inside a virtual machine — Popek–Goldberg's *equivalence*
//! property, fuzzed.

use proptest::prelude::*;
use vax_arch::Opcode;
use vax_arch::{MachineVariant, Psl};
use vax_asm::{Asm, Operand, Reg};
use vax_cpu::{CpuCounters, ExecTier, HaltReason, Machine, StepEvent};
use vax_vmm::{Monitor, MonitorConfig, VmConfig};

#[derive(Debug, Clone, Copy)]
enum Step {
    MovImm(u8, u32),
    Add(u8, u8),
    Sub(u8, u8),
    Xor(u8, u8),
    Bis(u8, u8),
    Bic(u8, u8),
    Mul(u8, u8),
    Ash(i8, u8),
    Neg(u8),
    Com(u8),
    Inc(u8),
    Dec(u8),
    Movpsl(u8),
    StoreLoad(u8, u8, u32),
    CvtRound(u8),
    IndexedStoreLoad(u8, u8, u32),
    BitSetTest(u8, u32),
}

fn arb_reg() -> impl Strategy<Value = u8> {
    0u8..10
}

fn arb_step() -> impl Strategy<Value = Step> {
    prop_oneof![
        (arb_reg(), any::<u32>()).prop_map(|(r, v)| Step::MovImm(r, v)),
        (arb_reg(), arb_reg()).prop_map(|(a, b)| Step::Add(a, b)),
        (arb_reg(), arb_reg()).prop_map(|(a, b)| Step::Sub(a, b)),
        (arb_reg(), arb_reg()).prop_map(|(a, b)| Step::Xor(a, b)),
        (arb_reg(), arb_reg()).prop_map(|(a, b)| Step::Bis(a, b)),
        (arb_reg(), arb_reg()).prop_map(|(a, b)| Step::Bic(a, b)),
        (arb_reg(), arb_reg()).prop_map(|(a, b)| Step::Mul(a, b)),
        (-31i8..31, arb_reg()).prop_map(|(c, r)| Step::Ash(c, r)),
        arb_reg().prop_map(Step::Neg),
        arb_reg().prop_map(Step::Com),
        arb_reg().prop_map(Step::Inc),
        arb_reg().prop_map(Step::Dec),
        arb_reg().prop_map(Step::Movpsl),
        (arb_reg(), arb_reg(), 0u32..32).prop_map(|(s, d, slot)| Step::StoreLoad(s, d, slot)),
        arb_reg().prop_map(Step::CvtRound),
        (arb_reg(), arb_reg(), 0u32..8).prop_map(|(s, d, i)| Step::IndexedStoreLoad(s, d, i)),
        (arb_reg(), 0u32..24).prop_map(|(d, bit)| Step::BitSetTest(d, bit)),
    ]
}

fn emit(steps: &[Step]) -> Vec<u8> {
    let mut a = Asm::new(0x1000);
    emit_body(&mut a, steps);
    a.halt().unwrap();
    a.assemble().unwrap().bytes
}

/// The same step sequence wrapped in a 25-iteration loop (above the
/// translator's hot threshold), so the body becomes a translated
/// superblock and runs both interpreted (cold) and translated (hot)
/// within one program. AP (R12) is the loop counter — the step generators
/// only touch R0–R11.
fn emit_looped(steps: &[Step]) -> Vec<u8> {
    let mut a = Asm::new(0x1000);
    a.movl(Operand::Imm(25), Operand::Reg(Reg::Ap)).unwrap();
    let top = a.label();
    let done = a.label();
    a.bind(top).unwrap();
    emit_body(&mut a, steps);
    a.decl(Operand::Reg(Reg::Ap)).unwrap();
    a.beql(done).unwrap();
    // A word branch: fuzzed bodies can outgrow a byte displacement.
    a.brw(top).unwrap();
    a.bind(done).unwrap();
    a.halt().unwrap();
    a.assemble().unwrap().bytes
}

fn emit_body(a: &mut Asm, steps: &[Step]) {
    let r = |n: u8| Operand::Reg(Reg::from_number(n));
    for s in steps {
        let _ = match *s {
            Step::MovImm(d, v) => a.movl(Operand::Imm(v), r(d)).unwrap(),
            Step::Add(s1, d) => a.inst(Opcode::Addl2, &[r(s1), r(d)]).unwrap(),
            Step::Sub(s1, d) => a.inst(Opcode::Subl2, &[r(s1), r(d)]).unwrap(),
            Step::Xor(s1, d) => a.inst(Opcode::Xorl2, &[r(s1), r(d)]).unwrap(),
            Step::Bis(s1, d) => a.inst(Opcode::Bisl2, &[r(s1), r(d)]).unwrap(),
            Step::Bic(s1, d) => a.inst(Opcode::Bicl2, &[r(s1), r(d)]).unwrap(),
            Step::Mul(s1, d) => a.inst(Opcode::Mull2, &[r(s1), r(d)]).unwrap(),
            Step::Ash(c, d) => a
                .inst(Opcode::Ashl, &[Operand::Imm(c as u32), r(d), r(d)])
                .unwrap(),
            Step::Neg(d) => a.inst(Opcode::Mnegl, &[r(d), r(d)]).unwrap(),
            Step::Com(d) => a.inst(Opcode::Mcoml, &[r(d), r(d)]).unwrap(),
            Step::Inc(d) => a.incl(r(d)).unwrap(),
            Step::Dec(d) => a.decl(r(d)).unwrap(),
            Step::Movpsl(d) => a.movpsl(r(d)).unwrap(),
            Step::StoreLoad(s1, d, slot) => {
                let addr = 0x3000 + 4 * slot;
                a.movl(r(s1), Operand::Abs(addr)).unwrap();
                a.movl(Operand::Abs(addr), r(d)).unwrap()
            }
            Step::CvtRound(d) => {
                // Narrow to a byte and sign-extend back.
                a.inst(Opcode::Cvtlb, &[r(d), r(d)]).unwrap();
                a.inst(Opcode::Cvtbl, &[r(d), r(d)]).unwrap()
            }
            Step::IndexedStoreLoad(s1, d, i) => {
                // r11 = index; store/load through @#0x3800[r11].
                use vax_asm::IndexBase;
                a.movl(Operand::Imm(i), Operand::Reg(Reg::R11)).unwrap();
                a.movl(r(s1), Operand::Indexed(IndexBase::Abs(0x3800), Reg::R11))
                    .unwrap();
                a.movl(Operand::Indexed(IndexBase::Abs(0x3800), Reg::R11), r(d))
                    .unwrap()
            }
            Step::BitSetTest(d, bit) => {
                // BBSS on scratch memory, recording the branch outcome.
                let taken = a.label();
                let done = a.label();
                a.inst(
                    Opcode::Bbss,
                    &[
                        Operand::Imm(bit),
                        Operand::Abs(0x3900),
                        Operand::Branch(taken),
                    ],
                )
                .unwrap();
                a.movl(Operand::Imm(1), r(d)).unwrap();
                a.brb(done).unwrap();
                a.bind(taken).unwrap();
                a.movl(Operand::Imm(2), r(d)).unwrap();
                a.bind(done).unwrap();
                &mut *a
            }
        };
    }
}

/// Runs the program on a bare machine in kernel mode, translation off,
/// under the given execution tier; returns the full observable outcome.
fn run_machine_full(
    variant: MachineVariant,
    code: &[u8],
    tier: ExecTier,
) -> ([u32; 10], u64, CpuCounters) {
    let mut m = Machine::new(variant, 256 * 1024);
    m.set_exec_tier(tier);
    m.mem_mut().write_slice(0x1000, code).unwrap();
    let mut psl = Psl::new();
    psl.set_ipl(31);
    m.set_psl(psl);
    m.set_reg(14, 0x8000);
    m.set_pc(0x1000);
    loop {
        match m.step() {
            StepEvent::Ok => {}
            StepEvent::Halted(HaltReason::HaltInstruction) => break,
            other => panic!("unexpected {other:?} at pc={:#x}", m.pc()),
        }
    }
    (std::array::from_fn(|i| m.reg(i)), m.cycles(), m.counters())
}

/// Runs the program on a bare machine with the decode cache enabled.
fn run_machine(variant: MachineVariant, code: &[u8]) -> [u32; 10] {
    run_machine_full(variant, code, ExecTier::Cache).0
}

/// Runs the program as a VM guest.
fn run_vm(code: &[u8]) -> [u32; 10] {
    let mut mon = Monitor::new(MonitorConfig::default());
    let vm = mon.create_vm("fuzz", VmConfig::default());
    mon.vm_write_phys(vm, 0x1000, code).unwrap();
    mon.boot_vm(vm, 0x1000);
    let exit = mon.run(200_000_000);
    assert_eq!(exit, vax_vmm::RunExit::AllHalted, "guest must halt");
    std::array::from_fn(|i| mon.vm(vm).regs[i])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The equivalence property, fuzzed: identical register files on all
    /// three machines. MOVPSL is the one expected difference in *source*
    /// (the mode fields come from VMPSL in a VM) — but because the VM
    /// boots in virtual kernel mode at IPL 31 matching the bare machines'
    /// state, even MOVPSL results must agree.
    #[test]
    fn random_programs_compute_identically(steps in proptest::collection::vec(arb_step(), 1..60)) {
        let code = emit(&steps);
        let standard = run_machine(MachineVariant::Standard, &code);
        let modified = run_machine(MachineVariant::Modified, &code);
        let vm = run_vm(&code);
        prop_assert_eq!(standard, modified, "standard vs modified bare");
        prop_assert_eq!(modified, vm, "bare vs virtual machine");
    }

    /// The decode cache's determinism contract, fuzzed: with the cache
    /// on vs. off, every program must produce the identical register
    /// file, cycle count, and event counters — bit for bit.
    #[test]
    fn decode_cache_is_invisible(steps in proptest::collection::vec(arb_step(), 1..60)) {
        let code = emit(&steps);
        for variant in [MachineVariant::Standard, MachineVariant::Modified] {
            let cached = run_machine_full(variant, &code, ExecTier::Cache);
            let bytewise = run_machine_full(variant, &code, ExecTier::Interp);
            prop_assert_eq!(cached.0, bytewise.0, "registers, {:?}", variant);
            prop_assert_eq!(cached.1, bytewise.1, "cycles, {:?}", variant);
            prop_assert_eq!(cached.2, bytewise.2, "counters, {:?}", variant);
        }
    }

    /// The three-way tier contract, fuzzed on a hot loop: the same body
    /// run 25 times (crossing the translator's hot threshold mid-run)
    /// must produce identical registers, cycles, and counters under the
    /// interpreter, the decode cache, and the translation tier.
    #[test]
    fn translation_tier_is_invisible(steps in proptest::collection::vec(arb_step(), 1..40)) {
        let code = emit_looped(&steps);
        for variant in [MachineVariant::Standard, MachineVariant::Modified] {
            let interp = run_machine_full(variant, &code, ExecTier::Interp);
            let cached = run_machine_full(variant, &code, ExecTier::Cache);
            let trans = run_machine_full(variant, &code, ExecTier::Trans);
            prop_assert_eq!(interp.0, cached.0, "interp vs cache registers, {:?}", variant);
            prop_assert_eq!(interp.1, cached.1, "interp vs cache cycles, {:?}", variant);
            prop_assert_eq!(&interp.2, &cached.2, "interp vs cache counters, {:?}", variant);
            prop_assert_eq!(interp.0, trans.0, "interp vs trans registers, {:?}", variant);
            prop_assert_eq!(interp.1, trans.1, "interp vs trans cycles, {:?}", variant);
            prop_assert_eq!(&interp.2, &trans.2, "interp vs trans counters, {:?}", variant);
        }
    }
}
