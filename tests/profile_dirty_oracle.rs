//! Working-set telemetry vs. two independent oracles, over the
//! monitor-fuzz corpus and all three execution tiers:
//!
//! * **Residency oracle (exact)**: forking the machine memory turns it
//!   into a copy-on-write overlay with zero resident pages, and overlay
//!   pages materialize on — and only on — writes. After a deterministic
//!   identical run, the resident-page set is an independent record of
//!   every page written, which must equal the tracker's dirty set
//!   exactly (same-value writes included).
//! * **Content-diff oracle (soundness)**: any page whose bytes changed
//!   over the run must be in the dirty set. The converse doesn't hold —
//!   a write that stores the value already present dirties a page
//!   without changing bytes — which is why the residency oracle, not
//!   this one, checks exactness.

use proptest::prelude::*;
use vax_cpu::ExecTier;
use vax_vmm::{Monitor, MonitorConfig, VmConfig, DEFAULT_SAMPLE_INTERVAL};

/// Builds the monitor_fuzz-corpus guest, booted but not yet run.
fn build(code: &[u8], scb_junk: u32, tier: ExecTier) -> Monitor {
    let mut mon = Monitor::new(MonitorConfig::default());
    mon.set_exec_tier(tier);
    let vm = mon.create_vm("fuzz", VmConfig::default());
    mon.vm_write_phys(vm, 0x1000, code).unwrap();
    for off in (0..0x140u32).step_by(4) {
        mon.vm_write_phys(vm, 0x200 + off, &scb_junk.to_le_bytes())
            .unwrap();
    }
    mon.boot_vm(vm, 0x1000);
    mon
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For every tier: tracker dirty set == CoW residency oracle, and
    /// content-diff pages ⊆ tracker dirty set.
    #[test]
    fn dirty_pages_match_the_oracles(
        code in proptest::collection::vec(any::<u8>(), 1..512),
        scb_junk in any::<u32>(),
    ) {
        for tier in [ExecTier::Interp, ExecTier::Cache, ExecTier::Trans] {
            // Run A: profiling (which enables write tracking) at boot;
            // the pre-run page images feed the content-diff check.
            let mut profiled = build(&code, scb_junk, tier);
            profiled.enable_profiling(DEFAULT_SAMPLE_INTERVAL);
            let pages = profiled.machine().mem().pages() as u32;
            let pre: Vec<Vec<u8>> = (0..pages)
                .map(|p| profiled.machine().mem().page(p).unwrap().to_vec())
                .collect();
            profiled.run(2_000_000);
            let dirty = profiled.machine().mem().dirty_pages();

            // Run B: identical, but the machine memory becomes a CoW
            // overlay at the same point (the discarded child freezes
            // the pre-run contents as the shared base).
            let mut oracle = build(&code, scb_junk, tier);
            drop(oracle.machine_mut().fork_mem());
            oracle.run(2_000_000);
            let resident = oracle.machine().mem().resident_page_numbers();
            prop_assert_eq!(
                &dirty, &resident,
                "{:?}: dirty set must equal the CoW residency oracle", tier
            );

            // Content diff: every page whose bytes changed must be
            // dirty (`dirty_pages` returns a sorted list).
            for pfn in 0..pages {
                let changed = profiled.machine().mem().page(pfn).unwrap()
                    != pre[pfn as usize].as_slice();
                if changed {
                    prop_assert!(
                        dirty.binary_search(&pfn).is_ok(),
                        "{:?}: page {:#x} changed content but is not dirty", tier, pfn
                    );
                }
            }
        }
    }
}
