//! End-to-end tests of the `vaxrun` command-line tool.

use std::io::Write;
use std::process::Command;

fn write_program(dir: &std::path::Path, name: &str, src: &str) -> std::path::PathBuf {
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(src.as_bytes()).unwrap();
    path
}

const HELLO: &str = r#"
start:  moval msg, r0
loop:   movzbl (r0)+, r1
        beql done
        mtpr r1, #35
        brb loop
done:   halt
        .align 4
msg:    .asciz "hi there\n"
"#;

#[test]
fn vaxrun_executes_bare_and_in_vm() {
    let dir = std::env::temp_dir().join("vaxrun_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let prog = write_program(&dir, "hello.s", HELLO);

    for extra in [&[][..], &["--vm"][..]] {
        let out = Command::new(env!("CARGO_BIN_EXE_vaxrun"))
            .args(extra)
            .arg(&prog)
            .output()
            .expect("vaxrun runs");
        assert!(
            out.status.success(),
            "args {extra:?}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert_eq!(
            String::from_utf8_lossy(&out.stdout),
            "hi there\n",
            "args {extra:?}"
        );
    }
}

#[test]
fn vaxrun_listing_mode() {
    let dir = std::env::temp_dir().join("vaxrun_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let prog = write_program(&dir, "list.s", HELLO);
    let out = Command::new(env!("CARGO_BIN_EXE_vaxrun"))
        .arg("--list")
        .arg(&prog)
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("start:"), "{text}");
    assert!(text.contains("movzbl (r0)+, r1"), "{text}");
}

#[test]
fn vaxrun_reports_assembly_errors() {
    let dir = std::env::temp_dir().join("vaxrun_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let prog = write_program(&dir, "bad.s", "frobnicate r0\n");
    let out = Command::new(env!("CARGO_BIN_EXE_vaxrun"))
        .arg(&prog)
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("unknown mnemonic"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn vaxrun_metrics_and_trace_outputs() {
    let dir = std::env::temp_dir().join("vaxrun_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let prog = write_program(&dir, "metrics.s", HELLO);
    let json_path = dir.join("metrics.json");
    let prom_path = dir.join("metrics.prom");
    let trace_path = dir.join("trace.json");

    let out = Command::new(env!("CARGO_BIN_EXE_vaxrun"))
        .arg("--vm")
        .arg("--metrics-out")
        .arg(&json_path)
        .arg("--trace-out")
        .arg(&trace_path)
        .arg(&prog)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let json = std::fs::read_to_string(&json_path).unwrap();
    assert!(json.contains("\"counters\""), "{json}");
    assert!(json.contains("\"vm_emulation_traps\""), "{json}");
    assert!(json.contains("\"histograms\""), "{json}");
    // HELLO's console output goes through MTPR-to-TXDB emulation traps.
    assert!(json.contains("exit_cost_emul_mtpr_other"), "{json}");
    let trace = std::fs::read_to_string(&trace_path).unwrap();
    assert!(trace.contains("\"traceEvents\""), "{trace}");
    assert!(trace.contains("\"cat\": \"vmexit\""), "{trace}");

    // Prometheus text when the path ends in .prom, bare mode included.
    let out = Command::new(env!("CARGO_BIN_EXE_vaxrun"))
        .arg("--metrics-out")
        .arg(&prom_path)
        .arg(&prog)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let prom = std::fs::read_to_string(&prom_path).unwrap();
    assert!(prom.contains("# TYPE vax_instructions counter"), "{prom}");
    assert!(prom.contains("vax_cycles "), "{prom}");
}

#[test]
fn vaxrun_fleet_mode() {
    let dir = std::env::temp_dir().join("vaxrun_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let prog = write_program(&dir, "fleet.s", HELLO);
    let metrics_path = dir.join("fleet_metrics.json");

    let out = Command::new(env!("CARGO_BIN_EXE_vaxrun"))
        .args(["--fleet", "3@2", "--jobs", "2", "--metrics-out"])
        .arg(&metrics_path)
        .arg(&prog)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("-- monitor 0: AllHalted"), "{stderr}");
    assert!(stderr.contains("-- monitor 2: AllHalted"), "{stderr}");
    assert!(
        stderr.contains("-- fleet: 3 monitors x 2 vms, 2 jobs"),
        "{stderr}"
    );
    // Fleet metrics JSON: the merged registry plus one entry per monitor.
    let json = std::fs::read_to_string(&metrics_path).unwrap();
    assert!(json.contains("\"fleet\""), "{json}");
    assert!(json.contains("\"monitors\""), "{json}");
    assert!(json.contains("\"fleet_monitors\""), "{json}");

    // A fleet spec that is not M or M@V is a usage error.
    let out = Command::new(env!("CARGO_BIN_EXE_vaxrun"))
        .args(["--fleet", "3@"])
        .arg(&prog)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn vaxrun_profile_mode() {
    let dir = std::env::temp_dir().join("vaxrun_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let prog = write_program(&dir, "profile.s", HELLO);
    let folded_path = dir.join("profile.folded");

    // --vm --profile: summary on stderr, collapsed stack on disk, and
    // profile families in the metrics registry.
    let metrics_path = dir.join("profile_metrics.json");
    let out = Command::new(env!("CARGO_BIN_EXE_vaxrun"))
        .arg("--vm")
        .arg("--profile-out")
        .arg(&folded_path)
        .arg("--metrics-out")
        .arg(&metrics_path)
        .arg(&prog)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(String::from_utf8_lossy(&out.stdout), "hi there\n");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("-- profile:"), "{stderr}");
    assert!(stderr.contains("tier cache"), "{stderr}");
    assert!(stderr.contains("-- working set:"), "{stderr}");
    let folded = std::fs::read_to_string(&folded_path).unwrap();
    assert!(folded.contains("guest;tier_"), "{folded}");
    let json = std::fs::read_to_string(&metrics_path).unwrap();
    assert!(json.contains("\"profile_samples\""), "{json}");
    assert!(json.contains("\"profile_cycles_cache\""), "{json}");
    assert!(json.contains("\"dirty_pages\""), "{json}");

    // Bare mode: --profile alone prints the summary too.
    let out = Command::new(env!("CARGO_BIN_EXE_vaxrun"))
        .arg("--profile")
        .arg(&prog)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("-- profile:"), "{stderr}");
}

#[test]
fn vaxrun_trace_depth_flag() {
    let dir = std::env::temp_dir().join("vaxrun_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let prog = write_program(&dir, "depth.s", HELLO);
    let trace_path = dir.join("depth_trace.json");

    // A valid depth works end to end.
    let out = Command::new(env!("CARGO_BIN_EXE_vaxrun"))
        .args(["--vm", "--trace-depth", "128", "--trace-out"])
        .arg(&trace_path)
        .arg(&prog)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let trace = std::fs::read_to_string(&trace_path).unwrap();
    assert!(trace.contains("\"traceEvents\""), "{trace}");

    // Out-of-range depths are usage errors (exit code 2).
    for bad in ["0", "16777217", "banana"] {
        let out = Command::new(env!("CARGO_BIN_EXE_vaxrun"))
            .args(["--vm", "--trace-depth", bad])
            .arg(&prog)
            .output()
            .unwrap();
        assert_eq!(out.status.code(), Some(2), "--trace-depth {bad}");
    }
}

#[test]
fn vaxrun_usage_on_bad_flags() {
    let out = Command::new(env!("CARGO_BIN_EXE_vaxrun"))
        .arg("--bogus")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
}

#[test]
fn vaxrun_delta_chain_workflow() {
    let dir = std::env::temp_dir().join("vaxrun_cli_delta_test");
    std::fs::create_dir_all(&dir).unwrap();
    // A loop that keeps writing memory, so every segment dirties pages.
    let prog = write_program(
        &dir,
        "chain.s",
        "
            movl #20000, r2
        top:
            addl2 #3, r3
            movl r3, @#0x3000
            sobgtr r2, top
            halt
        ",
    );
    let base = dir.join("base.snap");
    let d1 = dir.join("d1.snap");
    let d2 = dir.join("d2.snap");
    let run = |args: &[&std::ffi::OsStr]| {
        let out = Command::new(env!("CARGO_BIN_EXE_vaxrun"))
            .args(args)
            .output()
            .unwrap();
        (
            out.status.success(),
            String::from_utf8_lossy(&out.stderr).into_owned(),
        )
    };
    fn s(p: &std::path::Path) -> &std::ffi::OsStr {
        p.as_os_str()
    }
    fn a(t: &str) -> std::ffi::OsString {
        std::ffi::OsString::from(t)
    }

    // Base with tracking armed, two incremental links, full-chain
    // resume. The intermediate runs stop mid-loop (BudgetExhausted), so
    // vaxrun's not-yet-halted exit code is expected — the contract is
    // that each image gets written.
    let (_, err) = run(&[
        &a("--vm"),
        &a("--track-dirty"),
        &a("--max-cycles"),
        &a("50000"),
        &a("--snapshot-out"),
        s(&base),
        s(prog.as_path()),
    ]);
    assert!(err.contains("snapshot:"), "{err}");
    let chain1 = base.as_os_str().to_os_string();
    let (_, err) = run(&[
        &a("--restore-chain"),
        &chain1,
        &a("--max-cycles"),
        &a("50000"),
        &a("--snapshot-delta"),
        s(&d1),
    ]);
    assert!(err.contains("delta snapshot:"), "{err}");
    let mut chain2 = chain1.clone();
    chain2.push(",");
    chain2.push(&d1);
    let (_, err) = run(&[
        &a("--restore-chain"),
        &chain2,
        &a("--max-cycles"),
        &a("50000"),
        &a("--snapshot-delta"),
        s(&d2),
    ]);
    assert!(err.contains("delta snapshot:"), "{err}");
    let mut chain3 = chain2.clone();
    chain3.push(",");
    chain3.push(&d2);
    let (ok, err) = run(&[&a("--restore-chain"), &chain3]);
    assert!(ok, "{err}");
    assert!(err.contains("ConsoleHalt"), "{err}");

    // Deltas are an order of magnitude smaller than the base image.
    let base_len = std::fs::metadata(&base).unwrap().len();
    let d1_len = std::fs::metadata(&d1).unwrap().len();
    assert!(d1_len * 10 <= base_len, "delta {d1_len} vs base {base_len}");

    // A chain that skips a link is rejected, not silently wrong.
    let mut skipped = base.as_os_str().to_os_string();
    skipped.push(",");
    skipped.push(&d2);
    let (ok, err) = run(&[&a("--restore-chain"), &skipped]);
    assert!(!ok);
    assert!(err.contains("digest mismatch"), "{err}");

    // --snapshot-delta without a restored parent is a usage error.
    let (ok, err) = run(&[
        &a("--vm"),
        &a("--snapshot-delta"),
        s(&d1),
        s(prog.as_path()),
    ]);
    assert!(!ok);
    assert!(err.contains("needs a parent image"), "{err}");
}
