//! Profiler non-perturbation fuzzing: enabling `vax-prof` (sampling +
//! write tracking) must leave the simulation bit-identical — same
//! registers, PSL, cycle count, and counters — for arbitrary code, valid
//! or garbage, under every execution tier. The profiler only reads the
//! simulated clock and PC; these tests are the enforcement.

use proptest::prelude::*;
use vax_arch::{MachineVariant, Psl};
use vax_cpu::{CpuCounters, ExecTier, Machine, StepEvent};
use vax_vmm::{Monitor, MonitorConfig, VmConfig, VmStats, DEFAULT_SAMPLE_INTERVAL};

/// Everything a bare machine can reveal after a bounded run.
#[derive(Debug, PartialEq)]
struct BareOutcome {
    regs: [u32; 16],
    psl_raw: u32,
    cycles: u64,
    counters: CpuCounters,
    halted: bool,
}

/// Runs `code` at 0x1000 on a bare machine under `tier`, optionally
/// with profiling at an aggressive sample interval (so short fuzz runs
/// still cross plenty of sample boundaries).
fn run_bare(code: &[u8], tier: ExecTier, profile: bool, max_steps: u32) -> BareOutcome {
    let mut m = Machine::new(MachineVariant::Modified, 256 * 1024);
    m.set_exec_tier(tier);
    if profile {
        m.enable_profiling(16);
    }
    m.mem_mut().write_slice(0x1000, code).unwrap();
    let mut psl = Psl::new();
    psl.set_ipl(31);
    m.set_psl(psl);
    m.set_reg(14, 0x8000);
    m.set_pc(0x1000);
    for _ in 0..max_steps {
        match m.step() {
            StepEvent::Ok => {}
            _ => break,
        }
    }
    if profile {
        assert!(m.prof().is_some(), "profiler must stay on through the run");
    }
    BareOutcome {
        regs: std::array::from_fn(|i| m.reg(i)),
        psl_raw: m.psl().raw(),
        cycles: m.cycles(),
        counters: m.counters(),
        halted: m.halted(),
    }
}

/// Runs `code` as a monitor guest (the monitor_fuzz corpus shape) under
/// `tier`, optionally profiled, returning the guest-visible end state.
fn run_guest(
    code: &[u8],
    scb_junk: u32,
    tier: ExecTier,
    profile: bool,
) -> ([u32; 16], VmStats, Vec<u8>) {
    let mut mon = Monitor::new(MonitorConfig::default());
    mon.set_exec_tier(tier);
    if profile {
        mon.enable_profiling(DEFAULT_SAMPLE_INTERVAL);
    }
    let vm = mon.create_vm("fuzz", VmConfig::default());
    mon.vm_write_phys(vm, 0x1000, code).unwrap();
    for off in (0..0x140u32).step_by(4) {
        mon.vm_write_phys(vm, 0x200 + off, &scb_junk.to_le_bytes())
            .unwrap();
    }
    mon.boot_vm(vm, 0x1000);
    mon.run(2_000_000);
    let out = mon.vm_console_output(vm);
    (mon.vm(vm).regs, mon.vm_stats(vm), out)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Bare machine: the profiled run of every tier must match the
    /// unprofiled run of the same tier bit for bit.
    #[test]
    fn profiling_is_invisible_bare(
        code in proptest::collection::vec(any::<u8>(), 1..512),
    ) {
        for tier in [ExecTier::Interp, ExecTier::Cache, ExecTier::Trans] {
            let plain = run_bare(&code, tier, false, 50_000);
            let profiled = run_bare(&code, tier, true, 50_000);
            prop_assert_eq!(&profiled, &plain, "{:?} perturbed by profiling", tier);
        }
    }

    /// Monitor guest: profiling the monitor (sampling + write tracking
    /// + per-superblock stats) must not change guest-visible outcomes.
    #[test]
    fn profiling_is_invisible_in_monitor(
        code in proptest::collection::vec(any::<u8>(), 1..512),
        scb_junk in any::<u32>(),
    ) {
        for tier in [ExecTier::Interp, ExecTier::Cache, ExecTier::Trans] {
            let plain = run_guest(&code, scb_junk, tier, false);
            let profiled = run_guest(&code, scb_junk, tier, true);
            prop_assert_eq!(&profiled, &plain, "{:?} perturbed by profiling", tier);
        }
    }
}

/// The profiler's attribution must tile the profiled portion of the run:
/// per-tier attributed cycles sum to exactly the span between the first
/// and last sample boundaries (no cycle double-counted or lost), and the
/// exact retire counts sum to the machine's instruction count.
#[test]
fn attribution_tiles_the_run() {
    let program = vax_asm::assemble_text(
        "
            movl #5000, r0
            clrl r1
        top: addl2 r0, r1
            sobgtr r0, top
            halt
    ",
        0x1000,
    )
    .unwrap();
    for tier in [ExecTier::Interp, ExecTier::Cache, ExecTier::Trans] {
        let mut m = Machine::new(MachineVariant::Modified, 256 * 1024);
        m.set_exec_tier(tier);
        m.enable_profiling(64);
        m.mem_mut().write_slice(0x1000, &program.bytes).unwrap();
        let mut psl = Psl::new();
        psl.set_ipl(31);
        m.set_psl(psl);
        m.set_reg(14, 0x8000);
        m.set_pc(0x1000);
        while m.step() == StepEvent::Ok {}
        let prof = m.prof().expect("profiling on");
        assert!(prof.samples() > 10, "{tier:?}: loop must cross samples");
        // Attributed cycles = sum over buckets + overflow, and both
        // equal the clock span covered by samples.
        let bucket_sum: u64 = prof.pc_buckets().iter().map(|b| b.cycles).sum();
        assert_eq!(
            bucket_sum + prof.overflow_cycles(),
            prof.attributed_total(),
            "{tier:?}: buckets must tile the attributed span"
        );
        assert!(
            prof.attributed_total() <= m.cycles(),
            "{tier:?}: cannot attribute more than the machine ran"
        );
        let retired: u64 = vax_vmm::ProfTier::ALL
            .iter()
            .map(|&t| prof.retired(t))
            .sum();
        assert_eq!(
            retired,
            m.counters().instructions,
            "{tier:?}: exact retire counts must match the instruction counter"
        );
    }
}
