//! Paper Table 4: the full summary of VAX architecture changes, asserted
//! row by row on all three machines — standard VAX, modified VAX (bare),
//! and the virtual VAX.

use vax_arch::{AccessMode, Ipr, MachineVariant, Opcode, Protection, Psl, Pte, ScbVector, VmPsl};
use vax_cpu::{scan_sensitivity, Machine, ScanOutcome};
use vax_vmm::{Monitor, MonitorConfig, VmConfig};

fn outcome(variant: MachineVariant, in_vm: bool, op: Opcode) -> ScanOutcome {
    scan_sensitivity(variant, in_vm)
        .into_iter()
        .find(|f| f.opcode == op)
        .expect("opcode scanned")
        .outcome
}

/// Rows 1–2: LDPCTX, SVPCTX, MTPR, MFPR, HALT — privileged on the
/// standard VAX; VM-emulation trap from VM-kernel mode on the modified
/// VAX.
#[test]
fn row_privileged_instructions() {
    for op in [
        Opcode::Ldpctx,
        Opcode::Svpctx,
        Opcode::Mtpr,
        Opcode::Mfpr,
        Opcode::Halt,
    ] {
        assert_eq!(
            outcome(MachineVariant::Standard, false, op),
            ScanOutcome::PrivilegedTrap,
            "{op}: standard VAX, user mode"
        );
        assert_eq!(
            outcome(MachineVariant::Modified, true, op),
            ScanOutcome::VmEmulationTrap,
            "{op}: modified VAX, VM-kernel mode"
        );
    }
}

/// Row: CHM — traps to the new mode on a standard VAX; VM-emulation trap
/// when PSL<VM> is set.
#[test]
fn row_chm() {
    for op in [Opcode::Chmk, Opcode::Chme, Opcode::Chms, Opcode::Chmu] {
        assert!(matches!(
            outcome(MachineVariant::Standard, false, op),
            ScanOutcome::OtherTrap(_)
        ));
        assert_eq!(
            outcome(MachineVariant::Modified, true, op),
            ScanOutcome::VmEmulationTrap
        );
    }
}

/// Row: REI — executes on a standard VAX; VM-emulation trap in a VM.
#[test]
fn row_rei() {
    assert_eq!(
        outcome(MachineVariant::Standard, false, Opcode::Rei),
        ScanOutcome::Retired
    );
    assert_eq!(
        outcome(MachineVariant::Modified, true, Opcode::Rei),
        ScanOutcome::VmEmulationTrap
    );
}

/// Row: MOVPSL — returns the PSL on a standard VAX; in VM mode returns
/// the composite of VMPSL and PSL *without trapping*.
#[test]
fn row_movpsl() {
    assert_eq!(
        outcome(MachineVariant::Standard, false, Opcode::Movpsl),
        ScanOutcome::Retired
    );
    assert_eq!(
        outcome(MachineVariant::Modified, true, Opcode::Movpsl),
        ScanOutcome::Retired,
        "MOVPSL must not trap in VM mode (microcode merge)"
    );
}

/// Row: write to an unmodified page — the standard processor sets
/// PTE<M>; the modified processor takes a modify fault.
#[test]
fn row_modify_fault() {
    for (variant, expect_fault) in [
        (MachineVariant::Standard, false),
        (MachineVariant::Modified, true),
    ] {
        let mut m = Machine::new(variant, 64 * 1024);
        let spt = 0x1000;
        m.mem_mut()
            .write_u32(spt, Pte::build(16, Protection::Uw, true, false).raw())
            .unwrap();
        m.mmu_mut().set_sbr(spt);
        m.mmu_mut().set_slr(1);
        m.mmu_mut().set_mapen(true);
        let result = m.write_virt(0x8000_0000.into(), 1, 4, AccessMode::Kernel);
        if expect_fault {
            assert!(
                matches!(result, Err(vax_mem::MemFault::ModifyFault { .. })),
                "{variant}: expected a modify fault"
            );
        } else {
            assert!(result.is_ok(), "{variant}: hardware sets PTE<M>");
            assert!(Pte::from_raw(m.mem().read_u32(spt).unwrap()).modified());
        }
    }
}

/// Rows: VMPSL and PSL<VM> — exist on the modified VAX; PSL<VM> is never
/// visible to software.
#[test]
fn row_vmpsl_and_vm_bit() {
    let mut m = Machine::new(MachineVariant::Modified, 64 * 1024);
    m.enter_vm(VmPsl::new(AccessMode::Kernel, AccessMode::User).with_ipl(20));
    assert!(m.in_vm());
    assert_eq!(m.vmpsl().cur_mode(), AccessMode::Kernel);
    assert_eq!(m.psl().raw_visible() & Psl::VM, 0);

    // A standard machine panics on any attempt to enter VM mode.
    let result = std::panic::catch_unwind(|| {
        let mut s = Machine::new(MachineVariant::Standard, 4096);
        s.enter_vm(VmPsl::default());
    });
    assert!(result.is_err(), "standard VAX has no VM mode");
}

/// Row: PROBEVMx — privileged-instruction trap on the standard VAX;
/// returns accessibility on the modified VAX; reflected as an
/// unimplemented instruction inside a VM (no self-virtualization).
#[test]
fn row_probevm() {
    assert_eq!(
        outcome(MachineVariant::Standard, false, Opcode::Probevmr),
        ScanOutcome::PrivilegedTrap
    );
    assert_eq!(
        outcome(MachineVariant::Modified, true, Opcode::Probevmr),
        ScanOutcome::VmEmulationTrap,
        "trapped for the VMM, which reflects it as unimplemented"
    );
}

/// Row: WAIT — privileged-instruction trap on real machines; gives up
/// the processor inside a VM.
#[test]
fn row_wait() {
    assert_eq!(
        outcome(MachineVariant::Standard, false, Opcode::Wait),
        ScanOutcome::PrivilegedTrap
    );
    // Bare modified VAX, kernel mode: still a trap (Table 4: "no change").
    let mut m = Machine::new(MachineVariant::Modified, 64 * 1024);
    m.mem_mut().write_slice(0x1000, &[0xFD, 0x01]).unwrap();
    m.set_scbb(0x200);
    m.mem_mut()
        .write_u32(0x200 + ScbVector::ReservedInstruction.offset(), 0x2000)
        .unwrap();
    m.mem_mut().write_u8(0x2000, 0x00).unwrap();
    let mut psl = Psl::new();
    psl.set_ipl(31);
    m.set_psl(psl);
    m.set_reg(14, 0x8000);
    m.set_pc(0x1000);
    m.step();
    assert_eq!(m.pc(), 0x2000, "WAIT trapped through the SCB");

    // In a VM it parks the VM.
    let mut mon = Monitor::new(MonitorConfig::default());
    let vm = mon.create_vm("w", VmConfig::default());
    let p = vax_asm::assemble_text("wait\n halt", 0x1000).unwrap();
    mon.vm_write_phys(vm, 0x1000, &p.bytes).unwrap();
    mon.boot_vm(vm, 0x1000);
    mon.run(100_000);
    assert!(mon.vm_stats(vm).waits >= 1, "WAIT gave up the processor");
}

/// Rows: MEMSIZE / KCALL / IORESET — don't exist on real machines, exist
/// on the virtual VAX.
#[test]
fn row_vm_only_registers() {
    let mut m = Machine::new(MachineVariant::Modified, 64 * 1024);
    assert!(m.read_ipr(Ipr::Memsize).is_err(), "absent on real machines");
    assert!(m.write_ipr(Ipr::Kcall, 0).is_err());
    assert!(m.write_ipr(Ipr::Ioreset, 0).is_err());

    // Inside a VM, MFPR MEMSIZE works.
    let mut mon = Monitor::new(MonitorConfig::default());
    let vm = mon.create_vm("m", VmConfig::default());
    let p = vax_asm::assemble_text("mfpr #200, r2\n halt", 0x1000).unwrap();
    mon.vm_write_phys(vm, 0x1000, &p.bytes).unwrap();
    mon.boot_vm(vm, 0x1000);
    mon.run(1_000_000);
    assert_eq!(mon.vm(vm).regs[2], 512 * 512);
}

/// Row: virtual address space limits — the VMM imposes a smaller S limit
/// (paper §5); beyond it the guest sees a length violation.
#[test]
fn row_address_space_limit() {
    let mut mon = Monitor::new(MonitorConfig::default());
    let vm = mon.create_vm("l", VmConfig::default());
    // A guest whose SLR claims far more than the VMM's capacity gets it
    // clamped to the shadow capacity.
    let p = vax_asm::assemble_text(
        "
        mtpr #0x4000, #12
        mtpr #0x100000, #13     ; ask for 1M S pages
        mfpr #13, r2            ; read back the (clamped) SLR
        halt
        ",
        0x1000,
    )
    .unwrap();
    mon.vm_write_phys(vm, 0x1000, &p.bytes).unwrap();
    mon.boot_vm(vm, 0x1000);
    mon.run(1_000_000);
    let cap = vax_vmm::ShadowConfig::default().s_capacity;
    assert_eq!(mon.vm(vm).regs[2], cap, "SLR clamped to the VMM's limit");
}

/// Row: memory reference under ring compression — executive mode can
/// touch kernel-protected pages in a VM (verified live in
/// crates/core/tests; verified at the protection-table level here).
#[test]
fn row_ring_compression_leak() {
    for p in [Protection::Kw, Protection::Kr, Protection::Erkw] {
        let c = p.ring_compressed();
        assert!(
            c.allows_read(AccessMode::Executive),
            "{p}: executive gains access under compression"
        );
        assert_eq!(
            c.allows_read(AccessMode::User),
            p.allows_read(AccessMode::User),
            "{p}: user boundary preserved"
        );
        assert_eq!(
            c.allows_read(AccessMode::Supervisor),
            p.allows_read(AccessMode::Supervisor),
            "{p}: supervisor boundary preserved"
        );
    }
}

/// Row: timer — on the virtual VAX, interrupts arrive only while the VM
/// runs; the VMM maintains the uptime cell instead.
#[test]
fn row_timer_and_uptime() {
    let mut mon = Monitor::new(MonitorConfig::default());
    let a = mon.create_vm("t", VmConfig::default());
    // Register an uptime cell at gpa 0x3000, then spin a while.
    let p = vax_asm::assemble_text(
        "
        start:
            movl #4, @#0x300        ; KCALL block: func 4
            movl #0x3000, @#0x308   ; cell gpa
            mtpr #0x300, #201
            movl #20000, r2
        top:
            sobgtr r2, top
            halt
        ",
        0x1000,
    )
    .unwrap();
    mon.vm_write_phys(a, 0x1000, &p.bytes).unwrap();
    mon.boot_vm(a, 0x1000);
    mon.run(4_000_000);
    let uptime = mon.vm_read_phys_u32(a, 0x3000).unwrap();
    assert!(uptime > 0, "the VMM published uptime into guest memory");
}

/// Row: I/O — the virtual VAX starts I/O by writing the KCALL register
/// (covered extensively in tests/equivalence.rs; asserted here at the
/// trap level).
#[test]
fn row_io_kcall() {
    let mut mon = Monitor::new(MonitorConfig::default());
    let vm = mon.create_vm("io", VmConfig::default());
    let p = vax_asm::assemble_text(
        "
        movl #1, @#0x300        ; read sector 0
        clrl @#0x304
        movl #0x2000, @#0x308
        movl #512, @#0x30C
        clrl @#0x310
        mtpr #0x300, #201
        halt
        ",
        0x1000,
    )
    .unwrap();
    mon.vm_write_phys(vm, 0x1000, &p.bytes).unwrap();
    mon.boot_vm(vm, 0x1000);
    mon.run(1_000_000);
    assert_eq!(mon.vm_stats(vm).kcalls, 1, "one trap for the whole I/O");
}

/// Row: console — the virtual VAX console supports the boot/halt/
/// examine/deposit/continue subset.
#[test]
fn row_virtual_console() {
    let mut mon = Monitor::new(MonitorConfig::default());
    let vm = mon.create_vm("c", VmConfig::default());
    // DEPOSIT a tiny program through the console interface, BOOT it.
    let p = vax_asm::assemble_text("movl @#0x2000, r2\n halt", 0x1000).unwrap();
    mon.vm_write_phys(vm, 0x1000, &p.bytes).unwrap();
    mon.vm_write_phys(vm, 0x2000, &0xFEEDu32.to_le_bytes())
        .unwrap(); // DEPOSIT
    assert_eq!(mon.vm_read_phys_u32(vm, 0x2000), Some(0xFEED)); // EXAMINE
    mon.boot_vm(vm, 0x1000); // BOOT
    mon.run(1_000_000);
    assert_eq!(mon.vm(vm).regs[2], 0xFEED);
    assert_eq!(mon.vm(vm).state, vax_vmm::VmState::ConsoleHalt); // HALT
    mon.continue_vm(vm); // CONTINUE
    assert_eq!(mon.vm(vm).state, vax_vmm::VmState::Ready);
}
