//! Delta-chain fuzzing over the monitor-fuzz corpus: a base snapshot
//! plus N incremental deltas, captured at arbitrary points of an
//! arbitrary (usually malformed) guest's run, must restore to a monitor
//! that re-snapshots **byte-equal** to a full snapshot of the source —
//! on every execution tier. Plus the rejection contract: corrupted
//! deltas, a wrong base, and out-of-order chains are errors, never
//! panics or silently wrong state.

use proptest::prelude::*;
use vax_cpu::ExecTier;
use vax_snap::{restore_chain, snapshot_delta, snapshot_digest, snapshot_monitor, SnapshotError};
use vax_vmm::{Monitor, MonitorConfig, VmConfig};

/// `Monitor` has no `Debug`, so `expect_err` can't be used directly.
fn must_fail(r: Result<Monitor, SnapshotError>, why: &str) -> SnapshotError {
    match r {
        Err(e) => e,
        Ok(_) => panic!("{why}: chain restored when it must be rejected"),
    }
}

/// Same construction as `monitor_fuzz`: arbitrary code at the boot
/// address and a semi-plausible SCB, with write tracking armed before
/// the base snapshot (the chain protocol's one requirement).
fn tracked_fuzz_monitor(code: &[u8], scb_junk: u32, tier: ExecTier) -> Monitor {
    let mut mon = Monitor::new(MonitorConfig::default());
    mon.set_exec_tier(tier);
    mon.enable_dirty_tracking();
    let vm = mon.create_vm("fuzz", VmConfig::default());
    mon.vm_write_phys(vm, 0x1000, code).unwrap();
    for off in (0..0x140u32).step_by(4) {
        mon.vm_write_phys(vm, 0x200 + off, &scb_junk.to_le_bytes())
            .unwrap();
    }
    mon.boot_vm(vm, 0x1000);
    mon
}

/// Runs `segments` on a fresh monitor, capturing a delta after each.
/// Returns (source, base snapshot, delta chain).
fn build_chain(
    code: &[u8],
    scb_junk: u32,
    tier: ExecTier,
    segments: &[u64],
) -> (Monitor, Vec<u8>, Vec<Vec<u8>>) {
    let mut src = tracked_fuzz_monitor(code, scb_junk, tier);
    let base = snapshot_monitor(&src).unwrap();
    let mut digest = snapshot_digest(&base);
    let mut deltas = Vec::new();
    for &seg in segments {
        src.run(seg);
        let d = snapshot_delta(&mut src, digest).unwrap();
        digest = snapshot_digest(&d);
        deltas.push(d);
    }
    (src, base, deltas)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn chain_restore_is_bit_identical_on_every_tier(
        code in proptest::collection::vec(any::<u8>(), 1..512),
        scb_junk in any::<u32>(),
        segments in proptest::collection::vec(1_000u64..150_000, 1..5),
    ) {
        for tier in [ExecTier::Interp, ExecTier::Cache, ExecTier::Trans] {
            let (src, base, deltas) = build_chain(&code, scb_junk, tier, &segments);
            let restored = restore_chain(&base, &deltas).unwrap();
            prop_assert_eq!(
                snapshot_monitor(&restored).unwrap(),
                snapshot_monitor(&src).unwrap(),
                "chain restore diverged from source under {:?}",
                tier
            );
        }
    }

    #[test]
    fn corrupted_deltas_never_panic(
        code in proptest::collection::vec(any::<u8>(), 1..256),
        scb_junk in any::<u32>(),
        flip in any::<u8>(),
        pos_seed in any::<u64>(),
    ) {
        let (_, base, mut deltas) =
            build_chain(&code, scb_junk, ExecTier::Interp, &[40_000]);
        let pos = (pos_seed % deltas[0].len() as u64) as usize;
        deltas[0][pos] ^= flip | 1;
        // Any single-byte damage is an error (header, digest, payload,
        // checksum — somewhere the validation pipeline catches it).
        prop_assert!(restore_chain(&base, &deltas).is_err());
    }
}

#[test]
fn wrong_base_and_out_of_order_chains_are_rejected() {
    let segments = [30_000u64, 30_000];
    let (_, base, deltas) = build_chain(&[0x11; 64], 0x200, ExecTier::Interp, &segments);

    // A different base (different guest) with a structurally valid chain.
    let (_, other_base, _) = build_chain(&[0x22; 64], 0x200, ExecTier::Interp, &segments);
    let err = must_fail(restore_chain(&other_base, &deltas), "wrong base");
    assert_eq!(err.what(), "delta chain digest mismatch");

    // The right base with the deltas swapped.
    let swapped: Vec<_> = deltas.iter().rev().cloned().collect();
    let err = must_fail(restore_chain(&base, &swapped), "out of order");
    assert_eq!(err.what(), "delta chain digest mismatch");

    // A delta applied twice is also a linkage error, not corruption.
    let doubled = vec![deltas[0].clone(), deltas[0].clone()];
    let err = must_fail(restore_chain(&base, &doubled), "replayed link");
    assert_eq!(err.what(), "delta chain digest mismatch");

    // And the intact chain still restores — the rejections above are
    // not vacuous.
    restore_chain(&base, &deltas).expect("intact chain restores");
}

#[test]
fn delta_chain_survives_mid_chain_restore() {
    // Regression for the silently-dropped write tracking: restore used
    // to come back with tracking off, so the next snapshot_delta failed
    // (or worse, before the tracking-required guard, shipped an empty
    // delta). A chain must be able to continue from a restored monitor.
    let (_, base, deltas) = build_chain(&[0x33; 128], 0x200, ExecTier::Cache, &[50_000]);
    let mut restored = restore_chain(&base, &deltas).expect("restore mid-chain");
    assert!(
        restored.dirty_tracking_enabled(),
        "restore must re-arm write tracking when the source had it"
    );
    restored.run(50_000);
    let d2 = snapshot_delta(&mut restored, snapshot_digest(&deltas[0]))
        .expect("chain continues after restore");
    let chain = vec![deltas[0].clone(), d2];
    let full = restore_chain(&base, &chain).expect("extended chain restores");
    assert_eq!(
        snapshot_monitor(&full).unwrap(),
        snapshot_monitor(&restored).unwrap(),
        "extended chain diverged from the restored-and-resumed monitor"
    );
}

#[test]
fn untracked_monitor_refuses_delta_snapshot() {
    let mut mon = Monitor::new(MonitorConfig::default());
    mon.create_vm("guest", VmConfig::default());
    let base = snapshot_monitor(&mon).unwrap();
    let err = snapshot_delta(&mut mon, snapshot_digest(&base)).expect_err("tracking off");
    assert!(matches!(err, SnapshotError::Unsupported { .. }));
}
