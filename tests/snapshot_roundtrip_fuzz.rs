//! Snapshot round-trip fuzzing over the monitor-fuzz corpus: for
//! arbitrary (usually malformed) guest code, interrupting a run with
//! snapshot → restore must be invisible — the restored monitor's
//! cycles, counters, halt reasons, and console bytes are bit-identical
//! to the run that was never interrupted, both standalone and under the
//! parallel fleet executor at any job count.

use proptest::prelude::*;
use vax_snap::{restore_monitor, snapshot_monitor};
use vax_vmm::{Fleet, Monitor, MonitorConfig, VmConfig};

/// Same construction as `monitor_fuzz`: arbitrary code at the boot
/// address and a semi-plausible SCB so reflections sometimes land in
/// more garbage instead of always console-halting.
fn fuzz_monitor(code: &[u8], scb_junk: u32) -> Monitor {
    let mut mon = Monitor::new(MonitorConfig::default());
    let vm = mon.create_vm("fuzz", VmConfig::default());
    mon.vm_write_phys(vm, 0x1000, code).unwrap();
    for off in (0..0x140u32).step_by(4) {
        mon.vm_write_phys(vm, 0x200 + off, &scb_junk.to_le_bytes())
            .unwrap();
    }
    mon.boot_vm(vm, 0x1000);
    mon
}

/// Bit-identity oracle: the snapshot encoder is a pure function of
/// monitor state, so two monitors in the same state serialize to the
/// same bytes — machine registers, TLB, counters, memory, console
/// output, halt reasons, everything.
fn must_match(a: &Monitor, b: &Monitor) {
    assert_eq!(
        snapshot_monitor(a).unwrap(),
        snapshot_monitor(b).unwrap(),
        "restored and uninterrupted runs diverged"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn roundtrip_resume_is_bit_identical(
        code in proptest::collection::vec(any::<u8>(), 1..512),
        scb_junk in any::<u32>(),
        split in 1_000u64..400_000,
    ) {
        let mut reference = fuzz_monitor(&code, scb_junk);
        reference.run(split);
        let exit_ref = reference.run(2_000_000);

        let mut original = fuzz_monitor(&code, scb_junk);
        original.run(split);
        let bytes = snapshot_monitor(&original).unwrap();
        let mut restored = restore_monitor(&bytes).unwrap();
        let exit_restored = restored.run(2_000_000);

        prop_assert_eq!(exit_restored, exit_ref);
        must_match(&restored, &reference);
    }

    #[test]
    fn fleet_parallel_resume_after_restore_is_bit_identical(
        codes in proptest::collection::vec(
            (proptest::collection::vec(any::<u8>(), 1..256), any::<u32>()),
            2..5,
        ),
        jobs in 1usize..6,
        split in 1_000u64..200_000,
    ) {
        // Reference: uninterrupted, serial (the fleet's own determinism
        // contract already proves serial == parallel).
        let mut reference = Fleet::new();
        for (code, junk) in &codes {
            reference.push(fuzz_monitor(code, *junk));
        }
        reference.run_serial(split);
        let ref_report = reference.run_serial(1_000_000);

        // Subject: run in parallel, snapshot every monitor, restore
        // into a fresh fleet, resume in parallel.
        let mut first = Fleet::new();
        for (code, junk) in &codes {
            first.push(fuzz_monitor(code, *junk));
        }
        first.run_parallel(split, jobs);
        let mut resumed = Fleet::new();
        for i in 0..first.len() {
            let bytes = snapshot_monitor(first.monitor(i)).unwrap();
            resumed.push(restore_monitor(&bytes).unwrap());
        }
        let report = resumed.run_parallel(1_000_000, jobs);

        prop_assert_eq!(&report.outcomes, &ref_report.outcomes, "jobs = {}", jobs);
        for i in 0..resumed.len() {
            must_match(resumed.monitor(i), reference.monitor(i));
        }
    }
}
