//! Whole-system integrity: the guest OS's durable effects (disk
//! contents, memory state, counters) must be identical bare versus
//! virtualized, and guest misbehavior must be contained.

use vax_arch::MachineVariant;
use vax_cpu::{HaltReason, Machine, StepEvent};
use vax_dev::SimDisk;
use vax_os::{build_image, layout, run_bare, run_in_vm, Flavor, OsConfig, Workload};
use vax_vmm::{MonitorConfig, VmConfig};

#[test]
fn transaction_disk_contents_match_bare_vs_vm() {
    let cfg = OsConfig {
        nproc: 1,
        workload: Workload::Transaction,
        iterations: 64,
        ..OsConfig::default()
    };
    let img = build_image(&cfg).unwrap();

    // Bare: capture the sectors from the bus device.
    let mem_bytes = (img.mem_pages * 512).max(256 * 1024);
    let mut m = Machine::new(MachineVariant::Modified, mem_bytes);
    m.bus_mut().attach(
        vax_cpu::IO_BASE_PA,
        4096,
        Box::new(SimDisk::new(64, 2_000, 21, 0x100)),
    );
    for (gpa, bytes) in &img.segments {
        m.mem_mut().write_slice(*gpa, bytes).unwrap();
    }
    let mut psl = vax_arch::Psl::new();
    psl.set_ipl(31);
    m.set_psl(psl);
    m.set_pc(img.entry);
    loop {
        match m.step() {
            StepEvent::Ok => {}
            StepEvent::Halted(HaltReason::HaltInstruction) => break,
            other => panic!("bare run died: {other:?}"),
        }
    }
    // The transaction workload commits its record to sectors 1..=4; read
    // them back through the device by issuing reads host-side.
    let bare_sectors: Vec<Vec<u8>> = (1..=4)
        .map(|s| {
            let mut out = Vec::new();
            m.bus_mut().write(vax_cpu::IO_BASE_PA + 4, s).unwrap();
            m.bus_mut().write(vax_cpu::IO_BASE_PA, 3).unwrap(); // GO|READ
            let now = m.cycles();
            let _ = m.bus_mut().tick(now);
            let _ = m.bus_mut().tick(now + 1_000_000);
            for _ in 0..128 {
                out.extend_from_slice(
                    &m.bus_mut()
                        .read(vax_cpu::IO_BASE_PA + 8)
                        .unwrap()
                        .to_le_bytes(),
                );
            }
            out
        })
        .collect();

    // VM: the virtual disk is directly inspectable.
    let (out, mon, vm) = run_in_vm(
        &img,
        MonitorConfig::default(),
        VmConfig::default(),
        16_000_000_000,
    );
    assert!(out.completed);
    for (i, bare) in bare_sectors.iter().enumerate() {
        let vm_sector = &mon.vm(vm).vdisk[i + 1];
        assert_eq!(
            bare.as_slice(),
            vm_sector.as_slice(),
            "sector {} differs between bare and VM runs",
            i + 1
        );
    }
    // And the committed record is the workload's final state.
    assert_ne!(mon.vm(vm).vdisk[1][0], 0, "something was committed");
}

#[test]
fn uptime_syscall_returns_progressing_time_both_ways() {
    // The editing workload calls the uptime syscall; verify the uptime
    // cell mechanism works in a VM (paper §5: the VMOS reads the cell
    // the VMM maintains).
    let cfg = OsConfig {
        nproc: 1,
        workload: Workload::Editing,
        iterations: 64,
        ..OsConfig::default()
    };
    let img = build_image(&cfg).unwrap();
    let (out, mon, vm) = run_in_vm(
        &img,
        MonitorConfig::default(),
        VmConfig::default(),
        16_000_000_000,
    );
    assert!(out.completed);
    assert!(
        mon.vm(vm).uptime_cell.is_some(),
        "MiniVMS registered its uptime cell via KCALL"
    );
    let published = mon
        .vm_read_phys_u32(vm, layout::KDATA_GPA + layout::kvar::UPTIME)
        .unwrap();
    assert!(published > 0, "the VMM published a nonzero uptime");

    // Bare: the same syscall path counts the guest's own ticks.
    let bare = run_bare(&img, 8_000_000_000);
    assert!(bare.completed);
    assert!(bare.kernel.ticks > 0);
}

#[test]
fn miniultrix_runs_identically_with_two_modes() {
    let cfg = OsConfig {
        flavor: Flavor::MiniUltrix,
        nproc: 2,
        workload: Workload::Editing,
        iterations: 64,
        ..OsConfig::default()
    };
    let img = build_image(&cfg).unwrap();
    let bare = run_bare(&img, 8_000_000_000);
    let (vm, mon, id) = run_in_vm(
        &img,
        MonitorConfig::default(),
        VmConfig::default(),
        16_000_000_000,
    );
    assert!(bare.completed && vm.completed);
    assert_eq!(bare.console, vm.console);
    assert_eq!(bare.kernel.syscalls, vm.kernel.syscalls);
    // ULTRIX-32 uses two modes: no CHME/CHMS traffic at all. The CHM
    // count is the CHMK syscalls exactly (each trapped once).
    let stats = mon.vm_stats(id);
    assert_eq!(
        stats.chm,
        u64::from(vm.kernel.syscalls),
        "every CHM is a CHMK on MiniUltrix"
    );
}

#[test]
fn demand_paging_counts_match_exactly() {
    // The touch workload sweeps the demand region: guest page-fault
    // counts (serviced by the guest kernel) must be identical bare vs VM
    // and equal per process.
    let cfg = OsConfig {
        nproc: 3,
        workload: Workload::Editing,
        iterations: 80,
        ..OsConfig::default()
    };
    let img = build_image(&cfg).unwrap();
    let bare = run_bare(&img, 8_000_000_000);
    let (vm, mon, id) = run_in_vm(
        &img,
        MonitorConfig::default(),
        VmConfig::default(),
        16_000_000_000,
    );
    assert!(bare.completed && vm.completed);
    assert_eq!(bare.kernel.page_faults, vm.kernel.page_faults);
    assert!(bare.kernel.page_faults > 0, "demand pages were touched");
    // The VMM's view agrees with the guest's: each reflected TNV with an
    // invalid guest PTE is one guest page fault.
    assert_eq!(
        mon.vm_stats(id).guest_page_faults,
        u64::from(vm.kernel.page_faults)
    );
}

#[test]
fn user_access_beyond_p0lr_is_killed_by_the_guest() {
    // A hand-patched user program that dereferences past P0LR: the guest
    // kernel's kill handler must run ('!' on the console), not the VMM's.
    let cfg = OsConfig {
        nproc: 1,
        workload: Workload::Compute,
        iterations: 4,
        ..OsConfig::default()
    };
    let mut img = build_image(&cfg).unwrap();
    // Overwrite the user program: read from P0 va 0x20000 (vpn 256,
    // way past P0LR=48) then exit.
    let evil = vax_asm::assemble_text("movl @#0x20000, r2\n chmk #2", 0).unwrap();
    for (gpa, bytes) in &mut img.segments {
        if *gpa == layout::USER_CODE_GPA {
            bytes[..evil.bytes.len()].copy_from_slice(&evil.bytes);
        }
    }
    let bare = run_bare(&img, 8_000_000_000);
    assert!(bare.completed, "kill handler halts the machine");
    assert!(
        bare.console.contains(&b'!'),
        "guest kill handler reported: {:?}",
        String::from_utf8_lossy(&bare.console)
    );
    let (vm, _, _) = run_in_vm(
        &img,
        MonitorConfig::default(),
        VmConfig::default(),
        16_000_000_000,
    );
    assert!(vm.completed);
    assert_eq!(bare.console, vm.console, "identical containment");
}
