//! The paper's **equivalence property** (§2, §5): the same guest
//! operating system image, booted on the bare modified VAX and inside a
//! virtual machine, behaves identically except for the enumerated
//! virtual-VAX differences (timer pacing, I/O mechanism, and the VMM's
//! absorption of modify faults).

use vax_os::{build_image, run_bare, run_in_vm, Flavor, OsConfig, Workload};
use vax_vmm::{MonitorConfig, ShadowConfig, VmConfig};

fn both(config: &OsConfig) -> (vax_os::RunOutcome, vax_os::RunOutcome) {
    let img = build_image(config).expect("image builds");
    let bare = run_bare(&img, 2_000_000_000);
    let (vm, _, _) = run_in_vm(
        &img,
        MonitorConfig::default(),
        VmConfig {
            shadow: ShadowConfig {
                cache_slots: 4,
                ..ShadowConfig::default()
            },
            ..VmConfig::default()
        },
        4_000_000_000,
    );
    (bare, vm)
}

fn assert_equivalent(config: &OsConfig) {
    let (bare, vm) = both(config);
    assert!(bare.completed, "bare run completed ({:?})", config.workload);
    assert!(vm.completed, "VM run completed ({:?})", config.workload);
    assert_eq!(
        bare.console, vm.console,
        "console output identical ({:?})",
        config.workload
    );
    assert_eq!(bare.kernel.done, vm.kernel.done);
    assert_eq!(
        bare.kernel.syscalls, vm.kernel.syscalls,
        "same syscall count ({:?})",
        config.workload
    );
    assert_eq!(
        bare.kernel.page_faults, vm.kernel.page_faults,
        "same guest page faults ({:?})",
        config.workload
    );
    assert_eq!(bare.kernel.disk_ops, vm.kernel.disk_ops);
    // The enumerated difference: on bare hardware the *guest* services
    // modify faults; in a VM the VMM absorbs them (Table 4: the virtual
    // VAX behaves like a standard VAX for PTE<M>).
    assert_eq!(vm.kernel.modify_faults, 0, "a VM never sees modify faults");
}

#[test]
fn equivalence_compute() {
    assert_equivalent(&OsConfig {
        nproc: 2,
        workload: Workload::Compute,
        iterations: 800,
        ..OsConfig::default()
    });
}

#[test]
fn equivalence_editing() {
    assert_equivalent(&OsConfig {
        nproc: 2,
        workload: Workload::Editing,
        iterations: 120,
        ..OsConfig::default()
    });
}

#[test]
fn equivalence_transaction() {
    assert_equivalent(&OsConfig {
        nproc: 2,
        workload: Workload::Transaction,
        iterations: 150,
        ..OsConfig::default()
    });
}

#[test]
fn equivalence_syscall_and_ipl() {
    assert_equivalent(&OsConfig {
        nproc: 2,
        workload: Workload::Syscall,
        iterations: 300,
        ..OsConfig::default()
    });
    assert_equivalent(&OsConfig {
        nproc: 1,
        workload: Workload::IplHeavy,
        iterations: 150,
        ..OsConfig::default()
    });
}

#[test]
fn equivalence_touch_and_probe() {
    assert_equivalent(&OsConfig {
        nproc: 2,
        workload: Workload::Touch,
        iterations: 60,
        ..OsConfig::default()
    });
    assert_equivalent(&OsConfig {
        nproc: 1,
        workload: Workload::Probe,
        iterations: 100,
        ..OsConfig::default()
    });
}

#[test]
fn equivalence_queue_workload() {
    // INSQUE/REMQUE work queues must behave identically under
    // virtualization; the workload self-checks its queue invariants and
    // prints '?' on any violation.
    let (bare, vm) = both(&OsConfig {
        nproc: 2,
        workload: Workload::Queue,
        iterations: 300,
        ..OsConfig::default()
    });
    assert!(bare.completed && vm.completed);
    assert_eq!(bare.console, vm.console);
    assert!(
        !bare.console.contains(&b'?'),
        "queue invariants held on bare metal"
    );
    assert!(!vm.console.contains(&b'?'), "and in the VM");
}

#[test]
fn equivalence_mixed_multiprocess() {
    assert_equivalent(&OsConfig {
        nproc: 6,
        workload: Workload::Mixed,
        iterations: 200,
        ..OsConfig::default()
    });
}

#[test]
fn equivalence_miniultrix() {
    // ULTRIX-32 uses only two modes (paper §4 footnote 6); the same
    // equivalence must hold.
    assert_equivalent(&OsConfig {
        flavor: Flavor::MiniUltrix,
        nproc: 3,
        workload: Workload::Mixed,
        iterations: 150,
        ..OsConfig::default()
    });
}

#[test]
fn vm_runs_slower_than_bare_but_produces_identical_work() {
    // Efficiency + the performance claim's direction: virtualization has
    // a real cost (sensitive-instruction emulation), so the VM consumes
    // more cycles for the same work — but not absurdly more.
    let (bare, vm) = both(&OsConfig {
        nproc: 4,
        workload: Workload::Mixed,
        iterations: 250,
        ..OsConfig::default()
    });
    assert!(bare.completed && vm.completed);
    let ratio = bare.cycles as f64 / vm.cycles as f64;
    assert!(
        ratio < 1.0,
        "the VM must be slower: bare {} vs vm {}",
        bare.cycles,
        vm.cycles
    );
    assert!(
        ratio > 0.15,
        "but within an order of magnitude: ratio {ratio:.3}"
    );
}

#[test]
fn forced_mmio_io_is_far_more_expensive_in_a_vm() {
    // The §4.4.3 claim: emulating memory-mapped I/O costs many traps per
    // operation; the start-I/O KCALL costs one.
    let kcall_cfg = OsConfig {
        nproc: 1,
        workload: Workload::Transaction,
        iterations: 100,
        ..OsConfig::default()
    };
    let mmio_cfg = OsConfig {
        force_mmio: true,
        ..kcall_cfg.clone()
    };
    let img_kcall = build_image(&kcall_cfg).unwrap();
    let img_mmio = build_image(&mmio_cfg).unwrap();
    let (kcall, km, kv) = run_in_vm(
        &img_kcall,
        MonitorConfig::default(),
        VmConfig::default(),
        4_000_000_000,
    );
    let (mmio, mm, mv) = run_in_vm(
        &img_mmio,
        MonitorConfig::default(),
        VmConfig {
            io_strategy: vax_vmm::IoStrategy::EmulatedMmio,
            ..VmConfig::default()
        },
        8_000_000_000,
    );
    assert!(kcall.completed && mmio.completed);
    assert_eq!(kcall.kernel.disk_ops, mmio.kernel.disk_ops);
    let kcall_stats = km.vm_stats(kv);
    let mmio_stats = mm.vm_stats(mv);
    assert!(kcall_stats.kcalls > 0);
    assert!(
        mmio_stats.mmio_accesses > 100 * mmio_stats.kcalls.max(1),
        "MMIO emulation: {} CSR traps vs {} kcalls",
        mmio_stats.mmio_accesses,
        kcall_stats.kcalls
    );
}
