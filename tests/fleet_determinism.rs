//! Fleet determinism (DESIGN.md §12): `Fleet::run_parallel` must be
//! bit-identical, per monitor, to `Fleet::run_serial` — cycles, CPU
//! counters, per-VM stats, halt reasons, and console output — for every
//! worker-thread count, on a fleet mixing well-behaved mini-OS guests
//! with adversarial KCALL guests from the fault-containment corpus.

use vax_os::{boot_in_monitor, build_image, OsConfig, Workload};
use vax_vmm::{Fleet, Monitor, MonitorConfig, VmConfig};

const BUDGET: u64 = 40_000_000;

/// Deterministic xorshift32 byte stream for the adversarial guests.
struct XorShift(u32);

impl XorShift {
    fn next_u32(&mut self) -> u32 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 17;
        x ^= x << 5;
        self.0 = x;
        x
    }

    fn bytes(&mut self, n: usize) -> Vec<u8> {
        (0..n).map(|_| self.next_u32() as u8).collect()
    }
}

/// VM memory: 512 pages of 512 bytes (the `VmConfig` default).
const MEM_BYTES: u32 = 0x40000;

/// Boundary-value KCALL request blocks from the fault-containment
/// corpus: (request gpa, FUNC, SECTOR, BUFFER, LEN).
const KCALLS: [(u32, u32, u32, u32, u32); 5] = [
    (0x300, 2, 1, 0x2000, 512),                   // ordinary disk write
    (MEM_BYTES - 20, 1, 2, MEM_BYTES - 512, 512), // last valid block
    (MEM_BYTES - 16, 1, 0, 0x2000, 512),          // STATUS straddles the end
    (u32::MAX - 3, 2, 0, 0x2000, 512),            // block wraps the space
    (0x300, 3, 0, MEM_BYTES - 2, 4096),           // console write leaking out
];

/// A monitor hosting two adversarial guests: a KCALL with a
/// boundary-value request block, then a fall-through into seeded random
/// bytes — exactly the fault-containment fuzz shape, minus proptest.
fn adversarial_monitor(seed: u32) -> Monitor {
    let mut rng = XorShift(seed);
    let mut mon = Monitor::new(MonitorConfig::default());
    for i in 0..2 {
        let vm = mon.create_vm(&format!("adv{seed}.{i}"), VmConfig::default());
        let (req, func, sector, buffer, len) = KCALLS[(rng.next_u32() as usize) % KCALLS.len()];
        let prologue = vax_asm::assemble_text(&format!("mtpr #{req:#x}, #201"), 0x1000).unwrap();
        mon.vm_write_phys(vm, 0x1000, &prologue.bytes).unwrap();
        let code = rng.bytes(256);
        mon.vm_write_phys(vm, 0x1000 + prologue.bytes.len() as u32, &code)
            .unwrap();
        for (off, field) in [(0, func), (4, sector), (8, buffer), (12, len), (16, 0)] {
            let _ = mon.vm_write_phys(vm, req.wrapping_add(off), &field.to_le_bytes());
        }
        let scb_junk = rng.next_u32();
        for off in (0..0x140u32).step_by(4) {
            mon.vm_write_phys(vm, 0x200 + off, &scb_junk.to_le_bytes())
                .unwrap();
        }
        mon.vm_load_disk(vm, 2, b"fleet sector").unwrap();
        mon.boot_vm(vm, 0x1000);
    }
    mon
}

/// A monitor hosting one multiprogrammed mini-OS guest.
fn os_monitor(workload: Workload, nproc: u32, iterations: u32) -> Monitor {
    let img = build_image(&OsConfig {
        nproc,
        workload,
        iterations,
        ..OsConfig::default()
    })
    .unwrap();
    let mut mon = Monitor::new(MonitorConfig::default());
    boot_in_monitor(&mut mon, &img, VmConfig::default());
    mon
}

/// Builds the mixed fleet deterministically: well-behaved guests
/// (compute, MTPR-IPL-heavy with WAIT idling, disk-committing
/// transactions, context-switch-heavy page touching) interleaved with
/// adversarial KCALL guests.
fn build_fleet() -> Fleet {
    let mut fleet = Fleet::new();
    fleet.push(os_monitor(Workload::Compute, 2, 60));
    fleet.push(adversarial_monitor(0x9E3779B9));
    fleet.push(os_monitor(Workload::IplHeavy, 1, 40));
    fleet.push(adversarial_monitor(0x6C078965));
    fleet.push(os_monitor(Workload::Transaction, 2, 24));
    fleet.push(os_monitor(Workload::Touch, 4, 20));
    fleet.push(adversarial_monitor(0xB5297A4D));
    fleet
}

#[test]
fn parallel_fleet_is_bit_identical_to_serial() {
    let serial = build_fleet().run_serial(BUDGET);
    assert_eq!(serial.outcomes.len(), 7);

    // The host may expose any core count (CI runners vary); always cover
    // under-subscribed, even, and over-subscribed splits of 7 monitors.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut job_counts = vec![1, 2, cores.max(2), 7, 16];
    job_counts.dedup();

    for jobs in job_counts {
        let parallel = build_fleet().run_parallel(BUDGET, jobs);
        assert_eq!(
            parallel.outcomes, serial.outcomes,
            "fleet outcomes diverged from serial at {jobs} jobs"
        );
    }
}

#[test]
fn serial_rerun_is_bit_identical() {
    // The reference itself must be reproducible, or the contract above
    // would be vacuous.
    let a = build_fleet().run_serial(BUDGET);
    let b = build_fleet().run_serial(BUDGET);
    assert_eq!(a.outcomes, b.outcomes);
}
