//! VMM fault-injection fuzzing (DESIGN.md §11): seeded random guest
//! images plus adversarial KCALL request blocks against a multi-VM
//! monitor. Three properties per case:
//!
//! 1. **No panic** — every malformed guest action ends in a reflected
//!    exception, a recorded halt, or budget exhaustion.
//! 2. **Determinism** — re-running the identical case is bit-identical
//!    in cycles, counters, per-VM stats, and console output.
//! 3. **Observability is free** — enabling exit tracing changes none of
//!    the guest-visible or cycle-accounting state.
//!
//! Inputs are drawn from the vendored deterministic proptest stand-in,
//! so every case reproduces across runs and machines. 500 cases x 2 VMs
//! = 1000 randomized guest images per run.

use proptest::prelude::*;
use proptest::strategy::Union;
use vax_vmm::{Monitor, MonitorConfig, VmConfig};

/// Default VM memory: 512 pages of 512 bytes.
const MEM_BYTES: u32 = 0x40000;

/// One VM's KCALL request: (request-block gpa, FUNC, SECTOR, BUFFER, LEN).
type KcallReq = (u32, u32, u32, u32, u32);

/// Adversarial KCALL request blocks, weighted toward the partition and
/// address-space boundaries where the arithmetic bugs lived.
fn kcall_strategy() -> impl Strategy<Value = KcallReq> {
    let req: Union<u32> = prop_oneof![
        4 => Just(0x300u32),             // ordinary, fully inside
        1 => Just(MEM_BYTES - 20),       // last valid block
        1 => Just(MEM_BYTES - 16),       // STATUS straddles the boundary
        1 => Just(MEM_BYTES - 4),        // mostly outside
        1 => Just(u32::MAX - 3),         // wraps the address space
        1 => any::<u32>(),
    ];
    let func: Union<u32> = prop_oneof![
        2 => Just(1u32), // disk read
        2 => Just(2u32), // disk write
        1 => Just(3u32), // console write
        1 => Just(4u32), // uptime cell
        1 => any::<u32>(),
    ];
    let sector: Union<u32> = prop_oneof![
        2 => 0u32..64,
        1 => Just(64u32),
        1 => Just(u32::MAX),
        1 => any::<u32>(),
    ];
    let buffer: Union<u32> = prop_oneof![
        2 => Just(0x2000u32),            // ordinary
        1 => Just(MEM_BYTES - 512),      // last full sector fits
        1 => Just(MEM_BYTES - 2),        // partial longword leaks out
        1 => Just(MEM_BYTES - 1),
        1 => Just(0xFFFF_FFFCu32),       // buffer + i wraps
        1 => any::<u32>(),
    ];
    let len: Union<u32> = prop_oneof![
        2 => 0u32..513,
        1 => Just(513u32),
        1 => Just(4096u32),
        1 => Just(65536u32),
        1 => any::<u32>(),
    ];
    (req, func, sector, buffer, len)
}

/// Builds the monitor, runs it, and reduces the end state to strings:
/// `core` holds everything that must be identical with or without
/// observability; `counters` additionally pins the full metrics registry
/// (meaningful only between runs with the same obs setting).
fn run_case(codes: &[&Vec<u8>], kcalls: &[KcallReq], scb_junk: u32, obs: bool) -> (String, String) {
    let mut mon = Monitor::new(MonitorConfig::default());
    if obs {
        mon.enable_obs(4096);
    }
    let mut vms = Vec::new();
    for (i, (code, (req, func, sector, buffer, len))) in codes.iter().zip(kcalls).enumerate() {
        let vm = mon.create_vm(&format!("fuzz{i}"), VmConfig::default());
        // Prologue: issue the KCALL, then fall through into random bytes.
        let prologue = vax_asm::assemble_text(&format!("mtpr #{req:#x}, #201"), 0x1000).unwrap();
        mon.vm_write_phys(vm, 0x1000, &prologue.bytes).unwrap();
        mon.vm_write_phys(vm, 0x1000 + prologue.bytes.len() as u32, code)
            .unwrap();
        // The request block, where it is host-writable at all (a block
        // outside memory is itself one of the injected faults).
        for (off, field) in [(0, *func), (4, *sector), (8, *buffer), (12, *len), (16, 0)] {
            let _ = mon.vm_write_phys(vm, req.wrapping_add(off), &field.to_le_bytes());
        }
        // Semi-plausible SCB so reflections sometimes land in more
        // garbage rather than always halting.
        for off in (0..0x140u32).step_by(4) {
            mon.vm_write_phys(vm, 0x200 + off, &scb_junk.to_le_bytes())
                .unwrap();
        }
        mon.vm_load_disk(vm, 2, b"fuzz sector").unwrap();
        mon.boot_vm(vm, 0x1000);
        vms.push(vm);
    }
    let exit = mon.run(400_000);
    let mut core = format!("{exit:?}");
    for &vm in &vms {
        let console = mon.vm_console_output(vm);
        core.push_str(&format!(
            "|{:?} {:?} {:?} {:?} {console:?}",
            mon.vm(vm).state,
            mon.vm(vm).halt_reason,
            mon.vm_stats(vm),
            mon.vm(vm).vmm_log,
        ));
    }
    core.push_str(&format!("|{}", mon.world_switches()));
    let counters = mon.metrics().to_json();
    (core, counters)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(500))]

    #[test]
    fn random_guests_with_fault_injection_never_panic_and_stay_deterministic(
        code_a in proptest::collection::vec(any::<u8>(), 1..384),
        code_b in proptest::collection::vec(any::<u8>(), 1..384),
        kcall_a in kcall_strategy(),
        kcall_b in kcall_strategy(),
        scb_junk in any::<u32>(),
    ) {
        let codes = [&code_a, &code_b];
        let kcalls = [kcall_a, kcall_b];
        // Property 1 (no panic) is the run itself completing.
        let first = run_case(&codes, &kcalls, scb_junk, false);
        // Property 2: bit-identical replay, counters included.
        let second = run_case(&codes, &kcalls, scb_junk, false);
        prop_assert_eq!(&first, &second, "replay diverged");
        // Property 3: tracing must not perturb cycles or guest state.
        let traced = run_case(&codes, &kcalls, scb_junk, true);
        prop_assert_eq!(&first.0, &traced.0, "observability changed the run");
    }
}
