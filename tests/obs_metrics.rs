//! Observability contract tests: enabling exit tracing must be invisible
//! to the simulation (bit-identical cycles and counters), and the
//! per-cause histograms must reproduce the paper's §7.3 claim that
//! MTPR-to-IPL is an order of magnitude more expensive virtualized.

use vax_arch::{MachineVariant, Psl};
use vax_cpu::{CpuCounters, Machine, StepEvent};
use vax_vmm::{ExitCause, Monitor, MonitorConfig, RunExit, VmConfig};

/// A guest kernel that exercises several exit causes: MTPR-to-IPL (the
/// §7.3 hot path), MTPR-to-TXDB (other-register emulation), and a final
/// HALT to the virtual console.
const GUEST: &str = "
        movl #500, r2
    top:
        mtpr #10, #18
        mtpr #4, #18
        sobgtr r2, top
        mtpr #65, #35
        halt
    ";

fn run_guest(obs: bool) -> (Monitor, u64, CpuCounters) {
    let program = vax_asm::assemble_text(GUEST, 0x1000).unwrap();
    let mut monitor = Monitor::new(MonitorConfig::default());
    if obs {
        monitor.enable_obs(256);
    }
    let vm = monitor.create_vm("guest", VmConfig::default());
    monitor
        .vm_write_phys(vm, program.base, &program.bytes)
        .unwrap();
    monitor.boot_vm(vm, program.base);
    let exit = monitor.run(500_000_000);
    assert_eq!(exit, RunExit::AllHalted);
    let cycles = monitor.machine().cycles();
    let counters = monitor.machine().counters();
    (monitor, cycles, counters)
}

#[test]
fn obs_never_perturbs_cycles_or_counters() {
    let (_, cycles_off, counters_off) = run_guest(false);
    let (monitor, cycles_on, counters_on) = run_guest(true);
    assert_eq!(cycles_on, cycles_off, "tracing changed simulated time");
    assert_eq!(counters_on, counters_off, "tracing changed counters");
    // And tracing actually collected something.
    let obs = monitor.obs().expect("tracing enabled");
    assert!(obs.total_exits() > 0);
    assert_eq!(obs.exits(ExitCause::EmulMtprIpl), 1000);
}

#[test]
fn obs_off_by_default_and_discarded_on_disable() {
    let mut monitor = Monitor::new(MonitorConfig::default());
    assert!(monitor.obs().is_none(), "tracing must be off by default");
    monitor.enable_obs(16);
    assert!(monitor.obs().is_some());
    monitor.disable_obs();
    assert!(monitor.obs().is_none());
}

/// Bare-machine cycles for one run of `src` in kernel mode.
fn bare_cycles(src: &str) -> u64 {
    let program = vax_asm::assemble_text(src, 0x1000).unwrap();
    let mut m = Machine::new(MachineVariant::Standard, 64 * 1024);
    m.mem_mut()
        .write_slice(program.base, &program.bytes)
        .unwrap();
    let mut psl = Psl::new();
    psl.set_ipl(31);
    m.set_psl(psl);
    m.set_pc(program.base);
    while m.step() == StepEvent::Ok {}
    m.cycles()
}

#[test]
fn mtpr_ipl_costs_at_least_ten_times_native() {
    let (monitor, _, _) = run_guest(true);
    let obs = monitor.obs().unwrap();
    let h = obs.histogram(ExitCause::EmulMtprIpl);
    assert_eq!(h.count(), 1000);

    // Native cost of one MTPR-to-IPL, isolated by differencing the loop
    // against its empty control skeleton.
    let with_mtpr = bare_cycles(
        "
            movl #1000, r2
        top:
            mtpr #10, #18
            sobgtr r2, top
            halt
        ",
    );
    let without = bare_cycles(
        "
            movl #1000, r2
        top:
            sobgtr r2, top
            halt
        ",
    );
    let native = (with_mtpr - without) as f64 / 1000.0;
    let ratio = h.mean() / native;
    assert!(
        ratio >= 10.0,
        "virtualized MTPR-to-IPL {} cycles vs native {native} = {ratio:.1}x, expected >= 10x",
        h.mean()
    );
}

#[test]
fn exit_trace_records_are_coherent() {
    let (monitor, _, _) = run_guest(true);
    let obs = monitor.obs().unwrap();
    let ring = obs.trace();
    assert!(!ring.is_empty());
    let mut last_start = 0;
    for rec in ring.iter() {
        assert!(rec.start_cycles >= last_start, "trace must be time-ordered");
        last_start = rec.start_cycles;
        if rec.cause == ExitCause::EmulMtprIpl {
            assert!(rec.cost_cycles > 0, "completed exits carry their cost");
        }
    }
}

#[test]
fn metrics_exposition_covers_counters_and_histograms() {
    let (monitor, cycles, counters) = run_guest(true);
    let m = monitor.metrics();
    assert_eq!(m.get_counter("cycles"), Some(cycles));
    assert_eq!(m.get_counter("instructions"), Some(counters.instructions));
    assert_eq!(m.get_counter("vm_exits"), Some(counters.vm_exits()));

    let json = m.to_json();
    assert!(json.contains("\"vm_emulation_traps\""), "{json}");
    assert!(json.contains("\"exit_cost_emul_mtpr_ipl\""), "{json}");
    // The guest never enables translation, so the real TLB is exercised
    // through the shadow tables; the gauge must be honest either way —
    // a number when there were lookups, null when there were none.
    assert!(
        json.contains("\"tlb_hit_rate\": null") || json.contains("\"tlb_hit_rate\": 0."),
        "{json}"
    );
    assert_eq!(json.matches('{').count(), json.matches('}').count());

    let prom = m.to_prometheus();
    assert!(prom.contains("# TYPE vax_instructions counter"), "{prom}");
    assert!(
        prom.contains("vax_exit_cost_emul_mtpr_ipl_count 1000"),
        "{prom}"
    );
    assert!(prom.contains("_bucket{le=\"+Inf\"}"), "{prom}");

    let trace = vax_vmm::chrome_trace(monitor.obs().unwrap().trace().iter());
    assert!(trace.contains("\"traceEvents\""));
    assert!(trace.contains("emul_mtpr_ipl"));
}

/// Like [`run_guest`] with the profiler on; the simulation outcome must
/// match the unprofiled runs bit for bit.
fn run_guest_profiled() -> (Monitor, u64, CpuCounters) {
    let program = vax_asm::assemble_text(GUEST, 0x1000).unwrap();
    let mut monitor = Monitor::new(MonitorConfig::default());
    monitor.enable_obs(256);
    monitor.enable_profiling(64);
    let vm = monitor.create_vm("guest", VmConfig::default());
    monitor
        .vm_write_phys(vm, program.base, &program.bytes)
        .unwrap();
    monitor.boot_vm(vm, program.base);
    let exit = monitor.run(500_000_000);
    assert_eq!(exit, RunExit::AllHalted);
    let cycles = monitor.machine().cycles();
    let counters = monitor.machine().counters();
    (monitor, cycles, counters)
}

#[test]
fn profiling_never_perturbs_cycles_or_counters() {
    let (_, cycles_off, counters_off) = run_guest(false);
    let (monitor, cycles_on, counters_on) = run_guest_profiled();
    assert_eq!(cycles_on, cycles_off, "profiling changed simulated time");
    assert_eq!(counters_on, counters_off, "profiling changed counters");
    let prof = monitor.prof().expect("profiling enabled");
    assert!(prof.samples() > 0, "the run must cross sample boundaries");
    assert!(prof.attributed_total() > 0);
}

#[test]
fn profiling_off_by_default_and_discarded_on_disable() {
    let mut monitor = Monitor::new(MonitorConfig::default());
    assert!(monitor.prof().is_none(), "profiling must be off by default");
    assert!(!monitor.machine().mem().write_tracking_enabled());
    monitor.enable_profiling(64);
    assert!(monitor.prof().is_some());
    assert!(monitor.machine().mem().write_tracking_enabled());
    monitor.disable_profiling();
    assert!(monitor.prof().is_none());
    assert!(!monitor.machine().mem().write_tracking_enabled());
}

#[test]
fn profile_metrics_exposition() {
    let (monitor, _, counters) = run_guest_profiled();
    let m = monitor.metrics();

    // The exact retire counts split the instruction counter by tier.
    let by_tier: u64 = vax_vmm::ProfTier::ALL
        .iter()
        .map(|t| {
            m.get_counter(&format!("profile_instructions_{}", t.name()))
                .unwrap_or(0)
        })
        .sum();
    assert_eq!(by_tier, counters.instructions);
    assert!(m.get_counter("profile_samples").unwrap_or(0) > 0);
    // Dirty/touched page counts are levels (they drop on a drain), so
    // they export as gauges; only the event count is a counter.
    let dirty = m.get_gauge("dirty_pages").flatten().unwrap_or(0.0);
    let touched = m.get_gauge("touched_pages").flatten().unwrap_or(0.0);
    assert!(dirty > 0.0);
    assert!(touched >= dirty);
    assert!(m.get_counter("dirty_page_events").unwrap_or(0) > 0);
    assert_eq!(
        m.get_counter("dirty_pages"),
        None,
        "dirty_pages must not be a counter — merge would sum drained levels"
    );

    // Prometheus exposition carries the profile families, annotated.
    let prom = m.to_prometheus();
    assert!(
        prom.contains("# TYPE vax_profile_samples counter"),
        "{prom}"
    );
    assert!(prom.contains("# HELP vax_profile_cycles_cache"), "{prom}");
    assert!(prom.contains("vax_dirty_pages "), "{prom}");

    // The collapsed stack is one frame path + count per line.
    let prof = monitor.prof().unwrap();
    let folded = prof.collapsed_stack();
    for line in folded.lines() {
        let (frames, count) = line.rsplit_once(' ').expect("frames <space> count");
        assert!(frames.starts_with("guest;"), "{line}");
        count.parse::<u64>().expect("count is a number");
    }
}

#[test]
fn profile_metrics_merge_across_monitors() {
    // Two profiled monitors merged (the Fleet path): counter families
    // sum, histogram families fold — fleet-wide profiles need no
    // bespoke aggregation code.
    let (a, _, _) = run_guest_profiled();
    let (b, _, _) = run_guest_profiled();
    let ma = a.metrics();
    let mb = b.metrics();
    let mut merged = ma.clone();
    merged.merge(&mb);
    for name in [
        "profile_samples",
        "profile_cycles_cache",
        "dirty_page_events",
    ] {
        assert_eq!(
            merged.get_counter(name),
            Some(ma.get_counter(name).unwrap_or(0) + mb.get_counter(name).unwrap_or(0)),
            "{name} must sum across monitors"
        );
    }
    let fold = merged.get_histogram("profile_page_cycles").unwrap();
    let ha = ma.get_histogram("profile_page_cycles").unwrap();
    let hb = mb.get_histogram("profile_page_cycles").unwrap();
    assert_eq!(fold.count(), ha.count() + hb.count());
    assert_eq!(fold.sum(), ha.sum() + hb.sum());
}

#[test]
fn drained_dirty_levels_aggregate_correctly() {
    // The original bug: dirty_pages/touched_pages were exported as
    // counters, so fleet merge summed stale levels and a drain made the
    // "counter" move backwards. As gauges they bypass counter merge and
    // the fleet recomputes the level sum from live state.
    let (a, _, _) = run_guest_profiled();
    let (mut b, _, _) = run_guest_profiled();
    let a_dirty = f64::from(a.machine().mem().dirty_page_count());
    let b_before = b.machine().mem().dirty_page_count();
    assert!(a_dirty > 0.0 && b_before > 0);
    // Drain B (what a delta snapshot or a pre-copy round does): its
    // level drops to zero, its event counter does not.
    let drained = b.machine_mut().mem_mut().take_dirty_pages();
    assert_eq!(drained.len() as u32, b_before);
    let b_events = b.metrics().get_counter("dirty_page_events").unwrap();
    assert!(b_events >= u64::from(b_before));

    let mut fleet = vax_vmm::Fleet::new();
    fleet.push(a);
    fleet.push(b);
    let agg = fleet.fleet_metrics();
    // Level sum counts only what is dirty *now* — drained pages gone.
    assert_eq!(agg.get_gauge("dirty_pages").flatten(), Some(a_dirty));
    // Event counters still sum monotonically across the fleet.
    assert!(agg.get_counter("dirty_page_events").unwrap() >= b_events);
    // Merging the same registry twice must not double a level either:
    // merge ignores gauges entirely.
    let solo = fleet.per_monitor_metrics()[0].clone();
    let mut doubled = solo.clone();
    doubled.merge(&solo);
    assert_eq!(
        doubled.get_gauge("dirty_pages"),
        solo.get_gauge("dirty_pages")
    );
}
