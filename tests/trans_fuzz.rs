//! Three-way differential fuzzing of the execution tiers: arbitrary
//! code — valid or garbage — must produce bit-identical architectural
//! state, cycle counts, and counters whether it runs through the
//! bytewise interpreter, the decode cache, or the translated-superblock
//! tier. The interpreter is the oracle; the other tiers must be
//! observationally invisible.

use proptest::prelude::*;
use vax_arch::{MachineVariant, Protection, Psl, Pte};
use vax_cpu::{CpuCounters, ExecTier, Machine, StepEvent};
use vax_vmm::{Monitor, MonitorConfig, VmConfig, VmStats};

/// Everything a bare machine can reveal after a bounded run.
#[derive(Debug, PartialEq)]
struct BareOutcome {
    regs: [u32; 16],
    psl_raw: u32,
    cycles: u64,
    counters: CpuCounters,
    halted: bool,
}

/// Runs `code` at 0x1000 on a bare machine for at most `max_steps`
/// steps under `tier`. Garbage code faults through a zeroed SCB and
/// usually halts; either way the observable end state must be
/// tier-independent.
fn run_bare(code: &[u8], tier: ExecTier, max_steps: u32) -> BareOutcome {
    let mut m = Machine::new(MachineVariant::Modified, 256 * 1024);
    m.set_exec_tier(tier);
    m.mem_mut().write_slice(0x1000, code).unwrap();
    let mut psl = Psl::new();
    psl.set_ipl(31);
    m.set_psl(psl);
    m.set_reg(14, 0x8000);
    m.set_pc(0x1000);
    for _ in 0..max_steps {
        match m.step() {
            StepEvent::Ok => {}
            _ => break,
        }
    }
    BareOutcome {
        regs: std::array::from_fn(|i| m.reg(i)),
        psl_raw: m.psl().raw(),
        cycles: m.cycles(),
        counters: m.counters(),
        halted: m.halted(),
    }
}

/// Runs `code` at VA 0x1000 under an identity P0/S map with memory
/// management enabled, so every fetch and operand reference goes through
/// address translation. Garbage code probes TLB misses, protection and
/// length faults, and the translated tier's fast-path bail protocol with
/// inputs no hand-written test would pick.
fn run_mapped(code: &[u8], tier: ExecTier, max_steps: u32) -> BareOutcome {
    const S_BASE: u32 = 0x8000_0000;
    const P0_TABLE_PA: u32 = 0x2_0000;
    const SPT_PA: u32 = 0x3_0000;
    let mut m = Machine::new(MachineVariant::Modified, 256 * 1024);
    m.set_exec_tier(tier);
    m.mem_mut().write_slice(0x1000, code).unwrap();
    for vpn in 0..512u32 {
        let pte = Pte::build(vpn, Protection::Kw, true, true);
        m.mem_mut().write_u32(SPT_PA + 4 * vpn, pte.raw()).unwrap();
    }
    for vpn in 0..256u32 {
        let pte = Pte::build(vpn, Protection::Kw, true, true);
        m.mem_mut()
            .write_u32(P0_TABLE_PA + 4 * vpn, pte.raw())
            .unwrap();
    }
    let mmu = m.mmu_mut();
    mmu.set_sbr(SPT_PA);
    mmu.set_slr(512);
    mmu.set_p0br(S_BASE + P0_TABLE_PA);
    mmu.set_p0lr(256);
    mmu.set_mapen(true);
    let mut psl = Psl::new();
    psl.set_ipl(31);
    m.set_psl(psl);
    m.set_reg(14, 0x8000);
    m.set_pc(0x1000);
    for _ in 0..max_steps {
        match m.step() {
            StepEvent::Ok => {}
            _ => break,
        }
    }
    BareOutcome {
        regs: std::array::from_fn(|i| m.reg(i)),
        psl_raw: m.psl().raw(),
        cycles: m.cycles(),
        counters: m.counters(),
        halted: m.halted(),
    }
}

/// Runs `code` as a monitor guest (the monitor_fuzz corpus shape) under
/// `tier`, returning the guest-visible end state.
fn run_guest(code: &[u8], scb_junk: u32, tier: ExecTier) -> ([u32; 16], VmStats, Vec<u8>) {
    let mut mon = Monitor::new(MonitorConfig::default());
    mon.set_exec_tier(tier);
    let vm = mon.create_vm("fuzz", VmConfig::default());
    mon.vm_write_phys(vm, 0x1000, code).unwrap();
    for off in (0..0x140u32).step_by(4) {
        mon.vm_write_phys(vm, 0x200 + off, &scb_junk.to_le_bytes())
            .unwrap();
    }
    mon.boot_vm(vm, 0x1000);
    mon.run(2_000_000);
    let out = mon.vm_console_output(vm);
    (mon.vm(vm).regs, mon.vm_stats(vm), out)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Raw random bytes on a bare machine: every tier must observe the
    /// same faults, retire the same instructions, and end in the same
    /// state. Random code occasionally forms real loops, so this also
    /// probes the hot path with inputs no hand-written test would pick.
    #[test]
    fn random_bytes_are_tier_invariant_bare(
        code in proptest::collection::vec(any::<u8>(), 1..512),
    ) {
        let oracle = run_bare(&code, ExecTier::Interp, 50_000);
        for tier in [ExecTier::Cache, ExecTier::Trans] {
            let got = run_bare(&code, tier, 50_000);
            prop_assert_eq!(&got, &oracle, "{:?} diverged from interpreter", tier);
        }
    }

    /// Raw random bytes on a *mapped* machine: the translated tier's
    /// inline TLB fast path, pre-mutation bails, and TLB hit replay must
    /// leave architectural state, cycles, and MMU counters bit-identical
    /// with the interpreter walking the same page tables.
    #[test]
    fn random_bytes_are_tier_invariant_mapped(
        code in proptest::collection::vec(any::<u8>(), 1..512),
    ) {
        let oracle = run_mapped(&code, ExecTier::Interp, 50_000);
        for tier in [ExecTier::Cache, ExecTier::Trans] {
            let got = run_mapped(&code, tier, 50_000);
            prop_assert_eq!(&got, &oracle, "{:?} diverged from interpreter", tier);
        }
    }

    /// The monitor_fuzz corpus run under all three tiers: no panics,
    /// and identical guest-visible outcomes.
    #[test]
    fn monitor_corpus_is_tier_invariant(
        code in proptest::collection::vec(any::<u8>(), 1..512),
        scb_junk in any::<u32>(),
    ) {
        let oracle = run_guest(&code, scb_junk, ExecTier::Interp);
        for tier in [ExecTier::Cache, ExecTier::Trans] {
            let got = run_guest(&code, scb_junk, tier);
            prop_assert_eq!(&got, &oracle, "{:?} diverged from interpreter", tier);
        }
    }
}

/// Self-modifying code overwriting a *currently translated* superblock:
/// the loop body runs hot (so it is translated), then patches its own
/// ADDL2 into SUBL2 mid-loop. Every tier must observe the new bytes on
/// the next execution — the SMC page tracking drains into both the
/// decode cache and the translation cache.
#[test]
fn smc_overwriting_translated_superblock_is_tier_invariant() {
    // r3 accumulates; after 40 of 80 iterations, patch the opcode byte
    // of `addl2 #3, r3` (0xC0) to `subl2` (0xC2) via a store through r6.
    // The patch target address is discovered below and poked into the
    // immediate slot, keeping the program position-independent of
    // assembler encoding choices.
    let src = "
            movl #80, r2
            clrl r3
        top:
            addl2 #3, r3
            cmpl r2, #40
            bneq skip
            movb #0xC2, @#0x0
        skip:
            sobgtr r2, top
            halt
    ";
    let program = vax_asm::assemble_text(src, 0x1000).unwrap();
    let mut bytes = program.bytes.clone();
    // Locate `addl2 #3, r3` = C0 03 53 — the byte to patch — and the
    //`movb #C2, @#0` = 90 8F C2 9F 00 00 00 00 absolute slot to aim it.
    let addl_off = bytes
        .windows(3)
        .position(|w| w == [0xC0, 0x03, 0x53])
        .expect("addl2 #3, r3 in program");
    let movb_off = bytes
        .windows(8)
        .position(|w| w == [0x90, 0x8F, 0xC2, 0x9F, 0x00, 0x00, 0x00, 0x00])
        .expect("movb #C2, @#0 in program");
    let target = (0x1000 + addl_off as u32).to_le_bytes();
    bytes[movb_off + 4..movb_off + 8].copy_from_slice(&target);

    let oracle = run_bare(&bytes, ExecTier::Interp, 100_000);
    assert!(oracle.halted, "SMC program must halt");
    // 40 iterations of +3, then 40 of -3 (the patch lands before
    // iteration 40's decrement is re-fetched... the exact split is
    // whatever the interpreter says — the tiers must simply agree).
    for tier in [ExecTier::Cache, ExecTier::Trans] {
        let got = run_bare(&bytes, tier, 100_000);
        assert_eq!(got, oracle, "{tier:?} diverged on self-modifying code");
    }
    // The patch genuinely flipped the arithmetic: a pure-ADD run of the
    // same loop would end at 240.
    assert_ne!(oracle.regs[3], 240, "patch must have taken effect");
}
