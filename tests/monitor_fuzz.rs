//! Monitor-level robustness fuzzing: arbitrary guest code run under the
//! real VMM must never panic the monitor — every malformed guest action
//! ends in a reflected exception, a console halt, or budget exhaustion.

use proptest::prelude::*;
use vax_vmm::{Monitor, MonitorConfig, VmConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(160))]

    #[test]
    fn random_guest_code_never_panics_the_vmm(
        code in proptest::collection::vec(any::<u8>(), 1..512),
        scb_junk in any::<u32>(),
    ) {
        let mut mon = Monitor::new(MonitorConfig::default());
        let vm = mon.create_vm("fuzz", VmConfig::default());
        mon.vm_write_phys(vm, 0x1000, &code).unwrap();
        // A semi-plausible guest SCB so reflections sometimes "succeed"
        // into more garbage rather than always console-halting.
        for off in (0..0x140u32).step_by(4) {
            mon.vm_write_phys(vm, 0x200 + off, &scb_junk.to_le_bytes()).unwrap();
        }
        mon.boot_vm(vm, 0x1000);
        mon.run(2_000_000);
        // Reaching here without panic is the property; drain state for
        // good measure.
        let _ = mon.vm_console_output(vm);
        let _ = mon.vm_stats(vm);
    }

    /// Guests hammering privileged registers with random values.
    #[test]
    fn random_mtpr_storm_never_panics_the_vmm(
        regs in proptest::collection::vec((0u32..256, any::<u32>()), 1..40),
    ) {
        use vax_asm::{Asm, Operand};
        use vax_arch::Opcode;
        let mut a = Asm::new(0x1000);
        for (regno, value) in &regs {
            a.inst(
                Opcode::Mtpr,
                &[Operand::Imm(*value), Operand::Imm(*regno)],
            )
            .unwrap();
        }
        a.halt().unwrap();
        let p = a.assemble().unwrap();
        let mut mon = Monitor::new(MonitorConfig::default());
        let vm = mon.create_vm("storm", VmConfig::default());
        mon.vm_write_phys(vm, 0x1000, &p.bytes).unwrap();
        mon.boot_vm(vm, 0x1000);
        mon.run(4_000_000);
    }
}
